"""Simulation engines (synchronous rounds and asynchronous events).

The synchronous engine realises the paper's implicit machine model:
time advances in synchronous rounds; in each round every link carries
at most a fixed number of loads (default 1 — "at each time unit only a
single load is transferred over a link"); faults are realised at round
start; balancers observe the state and order one-hop migrations.

* :class:`Simulator` — task-granular synchronous simulation (the
  paper's setting).
* :class:`FastSimulator` — the same synchronous protocol with the
  vectorised large-N fast path enabled (``engine="rounds-fast"``);
  property-tested to reproduce :class:`Simulator` exactly.
* :class:`EventSimulator` — discrete-event *asynchronous* simulation in
  continuous time: per-node clocks (heterogeneous speeds, jitter,
  stragglers), latency-delayed transfers, results sampled at epoch
  boundaries. Degenerates exactly to :class:`Simulator` under unit
  clocks / zero latency / uniform cadence.
* :class:`FluidSimulator` — divisible-load simulation for the diffusion-
  family theory checks.
* :mod:`metrics <repro.sim.metrics>` — imbalance and traffic metrics.
* :class:`SimulationResult` — per-round history + summary.
"""

from repro.sim.engine import FastSimulator, FluidSimulator, Simulator
from repro.sim.events import EventSimulator
from repro.sim.metrics import (
    coefficient_of_variation,
    imbalance_summary,
    max_min_spread,
    normalized_spread,
)
from repro.sim.results import RoundRecord, SimulationResult

__all__ = [
    "Simulator",
    "FastSimulator",
    "EventSimulator",
    "FluidSimulator",
    "SimulationResult",
    "RoundRecord",
    "coefficient_of_variation",
    "max_min_spread",
    "normalized_spread",
    "imbalance_summary",
]
