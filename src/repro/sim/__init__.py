"""Simulation engines (synchronous rounds and asynchronous events).

The synchronous engine realises the paper's implicit machine model:
time advances in synchronous rounds; in each round every link carries
at most a fixed number of loads (default 1 — "at each time unit only a
single load is transferred over a link"); faults are realised at round
start; balancers observe the state and order one-hop migrations.

* :class:`Simulator` — task-granular synchronous simulation (the
  paper's setting).
* :class:`FastSimulator` — the same synchronous protocol with the
  vectorised large-N fast path enabled (``engine="rounds-fast"``);
  property-tested to reproduce :class:`Simulator` exactly.
* :class:`EventSimulator` — discrete-event *asynchronous* simulation in
  continuous time: per-node clocks (heterogeneous speeds, jitter,
  stragglers), latency-delayed transfers, results sampled at epoch
  boundaries. Degenerates exactly to :class:`Simulator` under unit
  clocks / zero latency / uniform cadence.
* :class:`EventFastSimulator` — the same asynchronous protocol with the
  vectorised fast path enabled and columnar event buffers
  (``engine="events-fast"``); differentially tested to reproduce
  :class:`EventSimulator` bit for bit on every clock model.
* :class:`FluidSimulator` — divisible-load simulation for the diffusion-
  family theory checks.
* :class:`BatchSimulator` — S independent seed replicates of one
  scenario as a single vectorised simulation (``engine="rounds-batch"``
  through the runner): Phase-A hop scores and Phase-B screens are
  batched across the replicate axis over one shared CSR adjacency,
  while per-replicate RNG streams stay untouched — each replicate's
  records, final loads and terminal RNG state are bit-identical to a
  solo :class:`FastSimulator` run of that seed.
* :mod:`kernel <repro.sim.kernel>` — the shared
  :class:`SimulationLoop`: every engine above is a thin driver
  supplying its round body, the kernel owns the lifecycle (observe,
  record, convergence).
* :mod:`recording <repro.sim.recording>` — pluggable recorders over a
  columnar :class:`RoundLog`: ``full`` (every round), ``thin:k``
  (every k-th + last, exact totals), ``summary`` (O(1) running
  aggregates for million-round runs).
* :mod:`telemetry <repro.sim.telemetry>` — pluggable probes: ``null``
  (off, zero overhead), ``counters`` (aggregate per-phase times and
  structured counters on ``result.telemetry``), ``trace[:path]``
  (Chrome trace-event JSON per run).
* :mod:`metrics <repro.sim.metrics>` — imbalance and traffic metrics.
* :class:`SimulationResult` — columnar per-round history + summary.
"""

from repro.sim.batch import BatchSimulator
from repro.sim.engine import FastSimulator, FluidSimulator, Simulator
from repro.sim.event_buffers import ArrivalBuffer, WakeSchedule
from repro.sim.events import EventFastSimulator, EventSimulator
from repro.sim.kernel import RoundDriver, RoundStats, SimulationLoop
from repro.sim.metrics import (
    coefficient_of_variation,
    imbalance_summary,
    max_min_spread,
    normalized_spread,
)
from repro.sim.recording import (
    FullRecorder,
    Recorder,
    SummaryRecorder,
    ThinningRecorder,
    make_recorder,
    recorder_tag,
)
from repro.sim.results import RoundLog, RoundRecord, SimulationResult
from repro.sim.telemetry import (
    CountersProbe,
    NullProbe,
    Probe,
    TraceProbe,
    make_probe,
    probe_tag,
)

__all__ = [
    "Simulator",
    "FastSimulator",
    "EventSimulator",
    "EventFastSimulator",
    "FluidSimulator",
    "BatchSimulator",
    "WakeSchedule",
    "ArrivalBuffer",
    "SimulationLoop",
    "RoundDriver",
    "RoundStats",
    "SimulationResult",
    "RoundRecord",
    "RoundLog",
    "Recorder",
    "FullRecorder",
    "ThinningRecorder",
    "SummaryRecorder",
    "make_recorder",
    "recorder_tag",
    "Probe",
    "NullProbe",
    "CountersProbe",
    "TraceProbe",
    "make_probe",
    "probe_tag",
    "coefficient_of_variation",
    "max_min_spread",
    "normalized_spread",
    "imbalance_summary",
]
