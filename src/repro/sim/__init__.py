"""Synchronous-round simulation engine (paper §5's execution model).

The engine realises the paper's implicit machine model: time advances in
synchronous rounds; in each round every link carries at most a fixed
number of loads (default 1 — "at each time unit only a single load is
transferred over a link"); faults are realised at round start; balancers
observe the state and order one-hop migrations.

* :class:`Simulator` — task-granular simulation (the paper's setting).
* :class:`FluidSimulator` — divisible-load simulation for the diffusion-
  family theory checks.
* :mod:`metrics <repro.sim.metrics>` — imbalance and traffic metrics.
* :class:`SimulationResult` — per-round history + summary.
"""

from repro.sim.engine import FluidSimulator, Simulator
from repro.sim.metrics import (
    coefficient_of_variation,
    imbalance_summary,
    max_min_spread,
    normalized_spread,
)
from repro.sim.results import RoundRecord, SimulationResult

__all__ = [
    "Simulator",
    "FluidSimulator",
    "SimulationResult",
    "RoundRecord",
    "coefficient_of_variation",
    "max_min_spread",
    "normalized_spread",
    "imbalance_summary",
]
