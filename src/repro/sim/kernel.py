"""The shared simulation kernel: one run loop for every engine.

Historically each engine (synchronous, fast, fluid, event) carried its
own copy of the per-round lifecycle — fault sampling, churn, balancer
step, apply/deliver, metric observation, convergence detection — so
every new capability had to be written four times.
:class:`SimulationLoop` owns that lifecycle once; each engine is a thin
*driver* (:class:`RoundDriver`) that supplies the engine-specific
pieces: how to reset, how to advance the system through one round (or
epoch of continuous time), and what load surface to observe.

Per round, the kernel runs::

    driver.play_round(r)     fault/churn sampling, balancer step(s),
                             apply/deliver — engine-specific
    observe                  imbalance summary of driver.observed_loads()
    recorder.observe(...)    pluggable recording policy (full / thin /
                             summary — see repro.sim.recording)
    convergence check        quiet-window (task mode) or spread
                             tolerance (fluid mode), shared verbatim

so every engine gets identical convergence semantics, identical record
fields, and any :class:`~repro.sim.recording.Recorder` for free. The
kernel allocates no per-round Python objects: metrics flow to the
recorder as scalars, and a columnar
:class:`~repro.sim.results.RoundLog` (or O(1) running aggregates)
receives them.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sim.metrics import imbalance_summary
from repro.sim.recording import RecorderSpec, make_recorder
from repro.sim.results import SimulationResult
from repro.sim.telemetry import ProbeSpec, make_probe

__all__ = [
    "RoundStats",
    "RoundDriver",
    "TaskStateMixin",
    "RunState",
    "SimulationLoop",
]


@dataclass
class RoundStats:
    """What one round of engine work reports back to the kernel.

    The imbalance metrics are *not* here — the kernel observes them
    itself from :meth:`RoundDriver.observed_loads` so every engine
    measures the same surface the same way.
    """

    applied: int = 0
    work: float = 0.0
    heat: float = 0.0
    blocked: int = 0
    asleep: int = 0
    n_tasks: int = 0


class RoundDriver(abc.ABC):
    """The engine-specific hooks :class:`SimulationLoop` drives.

    Required attributes (engines set these in ``__init__``):

    ``balancer``
        The algorithm under test (`.name` labels the result; task-mode
        drivers additionally rely on ``.idle()``).
    ``criteria``
        The :class:`~repro.sim.engine.ConvergenceCriteria` in force.
    ``dynamic``
        The churn process or None — convergence detection is skipped
        under churn (there is no quiescent state to converge to).
    ``fluid_mode``
        Class flag selecting the spread-tolerance convergence rule
        instead of the task-mode quiet-window rule.
    """

    #: fluid drivers flip this to get spread-tolerance convergence.
    fluid_mode = False

    @abc.abstractmethod
    def prepare(self, reset: bool) -> int:
        """Reset run state as requested; return the starting round index.

        A driver that supports continuation (``reset=False``) keeps the
        balancer's in-flight state and returns its running round
        counter; all others reset unconditionally and return 0.
        """

    @abc.abstractmethod
    def play_round(self, round_index: int) -> RoundStats:
        """Advance the system through one round (or epoch) of protocol.

        Everything between two observations lives here: fault
        realisation, in-transit deliveries, workload churn, the
        balancer step(s) and order application. The returned stats
        feed the recorder and the convergence check.
        """

    @abc.abstractmethod
    def observed_loads(self) -> np.ndarray:
        """The load surface metrics are computed on (effective loads)."""

    def in_transit_count(self) -> int:
        """Tasks currently on the wire (task engines override)."""
        return 0

    def in_flight_now(self) -> int:
        """Balancer-reported in-flight particles after this round."""
        balancer = self.balancer
        return 0 if balancer.idle() else getattr(balancer, "in_flight", 1)

    def finish(self, next_round: int) -> None:
        """Post-run bookkeeping (e.g. persisting the round counter)."""


class TaskStateMixin:
    """Shared task-engine state helpers (sync and event engines).

    Expects the host to provide ``system``, ``node_speeds``,
    ``dynamic``, ``task_graph`` and ``resources`` attributes.
    """

    def observed_loads(self) -> np.ndarray:
        """Loads normalised by speed (the metric surface)."""
        h = self.system.node_loads
        if self.node_speeds is None:
            return h
        return h / self.node_speeds

    def in_transit_count(self) -> int:
        return self.system.n_in_transit

    def _churn(self) -> None:
        """One churn step, with dependency/affinity cleanup."""
        created, removed = self.dynamic.step(self.system)
        if self.task_graph is not None:
            for tid in removed:
                self.task_graph.drop_task(tid)
        if self.resources is not None:
            for tid in removed:
                self.resources.drop_task(tid)


@dataclass
class RunState:
    """In-progress run bookkeeping between :meth:`SimulationLoop.begin`
    and :meth:`SimulationLoop.end`.

    ``r`` is the *next* round to play; after the loop it equals the
    number of rounds completed plus the starting base, which is exactly
    what :meth:`RoundDriver.finish` expects. ``done`` flips when the
    run converged or exhausted its round budget — callers interleaving
    several runs (the replicate-batched engine) drop a state from their
    active set the moment it is done.
    """

    result: SimulationResult
    r: int
    end_round: int
    start: float
    quiet: int = 0
    converged_at: int | None = None
    done: bool = False


class SimulationLoop:
    """The run loop shared by every engine.

    Parameters
    ----------
    driver:
        The engine supplying the per-round hooks.
    recorder:
        Recording policy — a spec string (``"full"``, ``"thin:<k>"``,
        ``"summary"``) or a :class:`~repro.sim.recording.Recorder`
        instance. The recorder is restarted at the top of every run,
        so one loop serves repeated/chained runs.
    probe:
        Telemetry policy — a spec string (``"null"``, ``"counters"``,
        ``"trace[:path]"``) or a :class:`~repro.sim.telemetry.Probe`
        instance. When enabled, the kernel wraps each lifecycle phase
        (``play_round`` / ``observe`` / ``record`` / ``converge``) in a
        wall-time span; under the default null probe every
        instrumentation site reduces to one boolean check, so the run
        — records, RNG stream, convergence — is provably unchanged.
    """

    def __init__(
        self,
        driver: RoundDriver,
        recorder: RecorderSpec = "full",
        probe: ProbeSpec = "null",
    ):
        self.driver = driver
        self.recorder = make_recorder(recorder)
        self.probe = make_probe(probe)

    def run(self, max_rounds: int = 1000, reset: bool = True) -> SimulationResult:
        """Simulate up to *max_rounds* rounds (early exit on convergence)."""
        driver = self.driver
        probe = self.probe
        traced = probe.enabled
        perf = time.perf_counter

        state = self.begin(max_rounds, reset)
        while not state.done:
            if traced:
                t0 = perf()
            stats = driver.play_round(state.r)
            if traced:
                probe.span("play_round", t0, perf())
            self.observe_round(state, stats)
        return self.end(state)

    def begin(self, max_rounds: int = 1000, reset: bool = True) -> RunState:
        """Start a run: validate, snapshot the initial surface, prepare.

        Together with :meth:`observe_round` and :meth:`end` this is the
        exploded form of :meth:`run`: ``begin`` covers everything up to
        the first ``play_round``, ``observe_round`` covers everything a
        round does *after* the driver has played it (observation,
        recording, convergence), and ``end`` the post-loop epilogue.
        The decomposition lets a caller drive several loops in
        lock-step (replicate batching) while each run stays bit-
        identical to a solo :meth:`run`.
        """
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        driver = self.driver
        result = SimulationResult(balancer_name=driver.balancer.name)
        result.initial_summary = imbalance_summary(driver.observed_loads())
        start = time.perf_counter()
        self.recorder.start()
        self.probe.start()
        base = driver.prepare(reset)
        return RunState(result=result, r=base, end_round=base + max_rounds,
                        start=start)

    def observe_round(
        self,
        state: RunState,
        stats: RoundStats,
        summ: dict[str, float] | None = None,
    ) -> None:
        """Record round ``state.r``'s stats and run the convergence check.

        The caller has just played round ``state.r``; this advances
        ``state.r`` past it and flips ``state.done`` on convergence or
        round-budget exhaustion. *summ* lets a caller hand in this
        round's :func:`imbalance_summary` of ``driver.observed_loads()``
        when it already computed it (the replicate-batched engine stacks
        the reduction across replicates); the values must be bitwise
        equal to what the kernel would compute itself.
        """
        driver = self.driver
        crit = driver.criteria
        probe = self.probe
        traced = probe.enabled
        perf = time.perf_counter
        r = state.r
        t1 = t2 = t3 = 0.0

        if traced:
            t1 = perf()
        if summ is None:
            summ = imbalance_summary(driver.observed_loads())
        if traced:
            t2 = perf()
            probe.span("observe", t1, t2)
        self.recorder.observe(
            r,
            stats.applied,
            stats.work,
            stats.heat,
            summ["cov"],
            summ["spread"],
            summ["max"],
            summ["min"],
            driver.in_flight_now(),
            stats.blocked,
            stats.n_tasks,
            stats.asleep,
        )
        if traced:
            t3 = perf()
            probe.span("record", t2, t3)

        converged_now = False
        if driver.fluid_mode:
            if summ["spread"] <= crit.spread_tol and r + 1 >= crit.min_rounds:
                state.converged_at = r
                converged_now = True
        elif driver.dynamic is None:
            # Convergence detection (skipped under churn: there is
            # no quiescent state to converge to).
            idle = driver.balancer.idle()
            balanced_enough = (
                crit.spread_tol > 0 and summ["spread"] <= crit.spread_tol
            )
            if stats.applied == 0 and idle and driver.in_transit_count() == 0:
                state.quiet += 1
            else:
                state.quiet = 0
            if r + 1 >= crit.min_rounds and (
                state.quiet >= crit.quiet_rounds or (balanced_enough and idle)
            ):
                state.converged_at = (
                    r - state.quiet + 1 if state.quiet >= crit.quiet_rounds else r
                )
                converged_now = True
        if traced:
            probe.span("converge", t3, perf())
        state.r = r + 1
        state.done = converged_now or state.r >= state.end_round

    def end(self, state: RunState) -> SimulationResult:
        """Finish a run started by :meth:`begin`; return its result."""
        driver = self.driver
        driver.finish(state.r)
        result = state.result
        result.converged_round = state.converged_at
        result.final_summary = imbalance_summary(driver.observed_loads())
        self.recorder.finalize(result)
        result.wall_time_s = time.perf_counter() - state.start
        self.probe.finalize(result)
        return result
