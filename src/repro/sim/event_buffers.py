"""Columnar event buffers for the vectorised event engine.

The scalar :class:`~repro.sim.events.EventSimulator` keeps every
pending event as a Python tuple on a ``heapq`` — one object per wake,
arrival and epoch marker, compared element-wise on every push and pop.
At large N the heap churn alone costs more than the balancing decisions
it schedules. The ``events-fast`` engine replaces that heap with two
columnar stores in the spirit of the PR 4
:class:`~repro.sim.results.RoundLog` (one preallocated, geometrically
grown NumPy array per field, no per-event Python objects):

* :class:`WakeSchedule` — the next wake time of every node, one slot
  per node. A *wave* (all clocks firing at one instant) is a single
  vectorised compare-and-gather instead of a pop-per-node loop.
* :class:`ArrivalBuffer` — in-flight transfers as parallel
  ``(when, rank, task_id, dest)`` columns with amortised-O(1) append.

Both stores reproduce the heap's ordering contract exactly: events are
consumed in ``(time, insertion order)`` order, where the insertion
*rank* is a monotone counter standing in for the heap's tie-breaking
sequence number. That is what lets ``events-fast`` replay the scalar
engine's schedule bit for bit (``tests/sim/
test_events_fast_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["WakeSchedule", "ArrivalBuffer"]

_MIN_CAPACITY = 16

#: rank value of an unscheduled slot (never compares ahead of a real one).
_NO_RANK = np.iinfo(np.int64).max


class WakeSchedule:
    """Per-node next-wake times as one columnar array.

    The scalar engine's invariant — exactly one pending wake per node —
    makes the wake "heap" a fixed-width table: ``times[i]`` is node
    *i*'s next firing instant and ``ranks[i]`` the order it was
    scheduled in (the heap's sequence-number tie-break). A wave is
    every node whose time equals the minimum, in rank order — the same
    batch the scalar loop assembles by popping equal-time entries.
    """

    __slots__ = ("_times", "_ranks", "_counter")

    def __init__(self, n_nodes: int):
        self._times = np.full(n_nodes, np.inf, dtype=np.float64)
        self._ranks = np.full(n_nodes, _NO_RANK, dtype=np.int64)
        self._counter = 0

    def schedule_all(self, when: float) -> None:
        """Schedule every node at *when*, ranked in node-id order (the
        round-0 seeding: the scalar engine pushes node 0..n−1)."""
        n = self._times.shape[0]
        self._times[:] = when
        self._ranks[:] = np.arange(n, dtype=np.int64)
        self._counter = n

    def peek_time(self) -> float:
        """Earliest pending wake time (``inf`` when nothing is pending)."""
        if self._times.shape[0] == 0:
            return np.inf
        return float(self._times.min())

    def pop_wave(self, when: float) -> np.ndarray:
        """Remove and return every node firing at *when*, in rank order
        (= the order the scalar heap would pop them)."""
        idx = np.nonzero(self._times == when)[0]
        if idx.shape[0] == 1:  # jittered clocks: almost every wave
            nodes = idx
        else:
            nodes = idx[np.argsort(self._ranks[idx], kind="stable")]
        self._times[nodes] = np.inf
        self._ranks[nodes] = _NO_RANK
        return nodes

    def schedule(self, nodes: np.ndarray, times: np.ndarray) -> None:
        """Schedule *nodes* at *times*, ranks assigned in array order
        (the scalar engine re-pushes a wave's nodes in wave order)."""
        k = len(nodes)
        self._times[nodes] = times
        self._ranks[nodes] = np.arange(self._counter, self._counter + k, dtype=np.int64)
        self._counter += k


class ArrivalBuffer:
    """In-flight transfers as growable parallel columns.

    Append-heavy and small (only latency-delayed transfers live here),
    so the store is unsorted columns with the :class:`RoundLog` growth
    discipline; consumption order — earliest ``when`` first, insertion
    rank breaking ties — is recovered at pop time by a masked argmin,
    which matches the heap's ``(when, seq)`` ordering for the arrival
    priority class.
    """

    __slots__ = ("_when", "_rank", "_tid", "_dest", "_n", "_counter", "_capacity")

    def __init__(self, capacity: int = 0):
        self._capacity = int(capacity)
        self._when = np.empty(self._capacity, dtype=np.float64)
        self._rank = np.empty(self._capacity, dtype=np.int64)
        self._tid = np.empty(self._capacity, dtype=np.int64)
        self._dest = np.empty(self._capacity, dtype=np.int64)
        self._n = 0
        self._counter = 0

    def __len__(self) -> int:
        return self._n

    def _grow(self, needed: int) -> None:
        new_cap = max(_MIN_CAPACITY, self._capacity * 2, needed)
        for name in ("_when", "_rank", "_tid", "_dest"):
            old = getattr(self, name)
            bigger = np.empty(new_cap, dtype=old.dtype)
            bigger[: self._n] = old[: self._n]
            setattr(self, name, bigger)
        self._capacity = new_cap

    def push(self, when: float, task_id: int, dest: int) -> None:
        """Buffer one in-flight transfer landing at *when*."""
        n = self._n
        if n >= self._capacity:
            self._grow(n + 1)
        self._when[n] = when
        self._rank[n] = self._counter
        self._tid[n] = task_id
        self._dest[n] = dest
        self._n = n + 1
        self._counter += 1

    def peek_time(self) -> float:
        """Earliest pending arrival time (``inf`` when empty)."""
        if self._n == 0:
            return np.inf
        return float(self._when[: self._n].min())

    def pop_earliest(self) -> tuple[int, int]:
        """Remove and return the ``(task_id, dest)`` of the earliest
        arrival (lowest rank among equal times)."""
        n = self._n
        when = self._when[:n]
        t = when.min()
        ties = np.nonzero(when == t)[0]
        i = int(ties[np.argmin(self._rank[ties])])
        out = (int(self._tid[i]), int(self._dest[i]))
        last = n - 1
        if i != last:  # keep columns dense; rank still orders entries
            self._when[i] = self._when[last]
            self._rank[i] = self._rank[last]
            self._tid[i] = self._tid[last]
            self._dest[i] = self._dest[last]
        self._n = last
        return out

    def drain_in_order(self) -> list[tuple[int, int]]:
        """Empty the buffer, returning ``(task_id, dest)`` pairs in
        ``(when, rank)`` order — the reset-time landing sweep."""
        n = self._n
        order = np.lexsort((self._rank[:n], self._when[:n]))
        out = [(int(self._tid[i]), int(self._dest[i])) for i in order]
        self._n = 0
        return out
