"""The discrete-event asynchronous simulation engine.

:class:`EventSimulator` drops the synchronous-round assumption of
:class:`repro.sim.engine.Simulator`: time is continuous, driven by a
heap-based event queue, and every node has its *own* clock. A node
wakes on its own balancing cadence (heterogeneous speed factors,
per-wake jitter, optional straggler slowdowns), observes the system
through the same :class:`~repro.interfaces.BalanceContext` snapshot,
and issues the same one-hop :class:`~repro.interfaces.Migration`
orders — so every registered :class:`~repro.interfaces.Balancer` runs
unchanged on both engines.

Like the synchronous engines, the event engine is a driver for the
shared :class:`~repro.sim.kernel.SimulationLoop`: one *epoch* of
continuous time is one kernel round, played by draining the event heap
up to the epoch-end marker. Event types (ordered by a fixed priority at
equal timestamps, so the schedule is deterministic):

1. **epoch-begin** — link fault/repair transitions are realised
   (:class:`~repro.network.faults.FaultModel.advance`), once per epoch.
2. **task arrival** — an in-transit task lands on its destination
   (latency = load × e_ij / bandwidth, scaled by ``latency_scale``).
3. **churn** — workload arrivals/completions
   (:class:`~repro.workloads.dynamic.DynamicWorkload.step`).
4. **wake** — a *wave* of nodes whose clocks fire at this instant
   balances: one ``balancer.step`` call; orders between two sleeping
   nodes are refused by the engine (async-oblivious balancers simply
   lose those decisions, the way a real node's plan for someone else's
   processors would). An order touching an awake endpoint survives:
   src awake is a push, dst awake a pull (work stealing's steals are
   sourced at the sleeping victim). Link capacity is enforced per *time
   unit*, not per wave: a link whose epoch budget was spent by an
   earlier wave refuses further transfers as busy (counted in
   ``blocked``), preserving the paper's "a single load per link per
   time unit" under desynchronised clocks.
5. **epoch-end** — the kernel samples metrics through the run's
   recorder (full / thin / summary — see :mod:`repro.sim.recording`)
   and checks convergence.

Results are sampled at *epoch* boundaries (default epoch length 1.0, one
epoch ⇔ one synchronous round), so they land in the existing
:class:`~repro.sim.results.SimulationResult` shape and every downstream
consumer — ``to_dict``/``from_dict``, the runner cache, ``analysis``,
``viz`` — works without modification.

**The correctness anchor**: with homogeneous unit clocks, zero transfer
latency and the default uniform cadence (= the epoch length), every
wake wave contains *all* nodes at integer times — the event schedule
degenerates to the synchronous protocol and :meth:`EventSimulator.run`
reproduces :meth:`Simulator.run` exactly (same seed ⇒ identical
per-round records). ``tests/sim/test_event_equivalence.py`` holds this
as a property, not a hope.

:class:`EventFastSimulator` (the ``events-fast`` engine) is the PR 3
vectorisation playbook applied to this engine: the same continuous-time
protocol with the per-event Python object churn removed. Wake
scheduling and in-flight transfers live in columnar NumPy buffers
(:mod:`repro.sim.event_buffers`) instead of a tuple heap, and every
balancing wave runs with ``BalanceContext.fast`` set, so balancers with
a batched step (PPLB) screen no-effect work through whole-graph CSR
array expressions before entering their scalar decision bodies.
Skipped work is exactly no-effect, no-RNG work, so ``events-fast``
reproduces the scalar event engine bit for bit — records, RNG state,
final loads — across every clock model (jitter, stragglers, cadence,
latency); ``tests/sim/test_events_fast_equivalence.py`` holds the full
differential suite.
"""

from __future__ import annotations

import heapq
import time
from typing import Mapping, Optional, Union

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.interfaces import BalanceContext, Balancer, Migration
from repro.network.faults import FaultModel
from repro.network.links import LinkAttributes, link_costs
from repro.network.topology import Topology
from repro.rng import RngLike, derive, ensure_rng
from repro.sim.engine import ConvergenceCriteria
from repro.sim.event_buffers import ArrivalBuffer, WakeSchedule
from repro.sim.kernel import RoundDriver, RoundStats, SimulationLoop, TaskStateMixin
from repro.sim.recording import RecorderSpec
from repro.sim.results import SimulationResult
from repro.sim.telemetry import ProbeSpec, make_probe
from repro.tasks.resources import ResourceMap
from repro.tasks.task import TaskSystem
from repro.tasks.task_graph import TaskGraph
from repro.workloads.dynamic import DynamicWorkload

#: event priorities at equal timestamps — the deterministic tie-break
#: that makes the degenerate schedule identical to a synchronous round
#: (faults realised, then deliveries, then churn, then balancing, then
#: sampling).
_EPOCH_BEGIN, _ARRIVAL, _CHURN, _WAKE, _EPOCH_END = range(5)

#: spawn key for the clock-jitter stream (kept off the balancer's
#: context RNG so wake scheduling never perturbs balancing decisions).
_CLOCK_STREAM = 9001


class EventSimulator(TaskStateMixin, RoundDriver):
    """Asynchronous, continuous-time simulation of the same protocol.

    Parameters mirror :class:`repro.sim.engine.Simulator` where the
    concept carries over; the additions are the clock model.

    Parameters
    ----------
    topology, system, balancer, links, fault_model, task_graph,
    resources, dynamic, link_capacity, c1, e0, seed, criteria,
    node_speeds, recorder, probe:
        As in :class:`~repro.sim.engine.Simulator`. ``node_speeds`` are
        *processing* speeds: they define the effective metric surface
        ``h_i / s_i`` and, by default, also drive each node's wake rate
        (a slow processor balances less often).
    transfer_latency:
        ``0`` (default) = instantaneous; a positive ``float`` is a
        constant in-flight time per hop (in simulation-time units);
        ``"size"`` computes ``load · distance / bandwidth ·
        latency_scale`` per hop — the continuous-time version of the
        synchronous engine's size-proportional latency.
    latency_scale:
        Multiplier for ``"size"`` latencies (1.0 = one time unit per
        unit of load over a unit link).
    cadence:
        Base balancing period in simulation-time units. A node with
        clock speed ``c_i`` wakes every ``cadence / c_i`` time units.
        The default (1.0 = the epoch length) is the degenerate,
        synchronous-equivalent setting.
    clock_speeds:
        Optional per-node wake-rate factors. Defaults to
        ``node_speeds`` when given, else uniform 1.0.
    wake_jitter:
        Fractional jitter on every wake interval: each period is drawn
        as ``cadence / c_i · U(1−j, 1+j)``. Jitter draws come from a
        dedicated sub-stream of *seed*, so they never perturb the
        balancer's context RNG.
    stragglers:
        Optional mapping node → slowdown factor ≥ 1 applied on top of
        the node's clock speed (a factor of 4 makes the node balance
        4× less often). Keys may be ints or strings (JSON round-trip).
    epoch:
        Sampling period: metrics are recorded and faults/churn realised
        every *epoch* time units; one epoch is one "round" in the
        recorded result.

    Attributes
    ----------
    events_processed:
        Events popped during the last :meth:`run` (the events/sec
        numerator of ``benchmarks/bench_perf.py``).
    wakes_per_node:
        Per-node count of balancing wakes during the last :meth:`run`.
    """

    def __init__(
        self,
        topology: Topology,
        system: TaskSystem,
        balancer: Balancer,
        links: Optional[LinkAttributes] = None,
        fault_model: Optional[FaultModel] = None,
        task_graph: Optional[TaskGraph] = None,
        resources: Optional[ResourceMap] = None,
        dynamic: Optional[DynamicWorkload] = None,
        link_capacity: int = 1,
        transfer_latency: Union[float, str] = 0.0,
        latency_scale: float = 1.0,
        c1: float = 1.0,
        e0: float = 1.0,
        seed: RngLike = None,
        criteria: ConvergenceCriteria = ConvergenceCriteria(),
        node_speeds: Optional[np.ndarray] = None,
        cadence: float = 1.0,
        clock_speeds: Optional[np.ndarray] = None,
        wake_jitter: float = 0.0,
        stragglers: Optional[Mapping] = None,
        epoch: float = 1.0,
        recorder: RecorderSpec = "full",
        probe: ProbeSpec = "null",
    ):
        if system.topology is not topology:
            raise ConfigurationError("task system was built for a different topology")
        if link_capacity < 1:
            raise ConfigurationError(f"link_capacity must be >= 1, got {link_capacity}")
        if isinstance(transfer_latency, str):
            if transfer_latency != "size":
                raise ConfigurationError(
                    f"transfer_latency must be a float >= 0 or 'size', got "
                    f"{transfer_latency!r}"
                )
        elif transfer_latency < 0:
            raise ConfigurationError(
                f"transfer_latency must be >= 0, got {transfer_latency}"
            )
        if latency_scale < 0:
            raise ConfigurationError(f"latency_scale must be >= 0, got {latency_scale}")
        if cadence <= 0:
            raise ConfigurationError(f"cadence must be positive, got {cadence}")
        if epoch <= 0:
            raise ConfigurationError(f"epoch must be positive, got {epoch}")
        if not 0 <= wake_jitter < 1:
            raise ConfigurationError(
                f"wake_jitter must be in [0, 1), got {wake_jitter}"
            )
        n = topology.n_nodes
        if node_speeds is not None:
            node_speeds = np.asarray(node_speeds, dtype=np.float64)
            if node_speeds.shape != (n,):
                raise ConfigurationError(
                    f"node_speeds must have shape ({n},), got {node_speeds.shape}"
                )
            if (node_speeds <= 0).any():
                raise ConfigurationError("node speeds must be positive")
        if clock_speeds is None:
            clock_speeds = (
                node_speeds.copy() if node_speeds is not None else np.ones(n)
            )
        else:
            clock_speeds = np.asarray(clock_speeds, dtype=np.float64).copy()
            if clock_speeds.shape != (n,):
                raise ConfigurationError(
                    f"clock_speeds must have shape ({n},), got {clock_speeds.shape}"
                )
            if (clock_speeds <= 0).any():
                raise ConfigurationError("clock speeds must be positive")
        if stragglers:
            for node, factor in stragglers.items():
                node = int(node)  # JSON object keys arrive as strings
                if not 0 <= node < n:
                    raise ConfigurationError(
                        f"straggler node {node} out of range [0, {n})"
                    )
                factor = float(factor)
                if factor < 1:
                    raise ConfigurationError(
                        f"straggler slowdown must be >= 1, got {factor} "
                        f"for node {node}"
                    )
                clock_speeds[node] /= factor

        self.topology = topology
        self.system = system
        self.balancer = balancer
        self.links = links if links is not None else LinkAttributes.uniform(topology)
        if self.links.topology is not topology:
            raise ConfigurationError("link attributes were built for a different topology")
        self.fault_model = fault_model
        self.task_graph = task_graph
        self.resources = resources
        self.dynamic = dynamic
        self.link_capacity = link_capacity
        self.transfer_latency = transfer_latency
        self.latency_scale = float(latency_scale)
        self.criteria = criteria
        self.node_speeds = node_speeds
        self.cadence = float(cadence)
        self.clock_speeds = clock_speeds
        self.wake_jitter = float(wake_jitter)
        self.epoch = float(epoch)
        self.rng = ensure_rng(seed)
        # Jitter draws must not touch the balancer's context stream: a
        # Generator seed is *spawned* (advances only its spawn counter,
        # never the bit stream the balancer consumes); plain seeds get
        # an independent derived stream.
        if self.wake_jitter == 0:
            self._clock_rng = None
        elif isinstance(seed, np.random.Generator):
            self._clock_rng = seed.spawn(1)[0]
        else:
            self._clock_rng = derive(seed, _CLOCK_STREAM)
        self.link_costs = link_costs(self.links, c1=c1, e0=e0)
        self._all_up = np.ones(topology.n_edges, dtype=bool)
        self._periods = self.cadence / self.clock_speeds

        self.events_processed = 0
        self.wakes_per_node = np.zeros(n, dtype=np.int64)
        self.now = 0.0
        self.probe = make_probe(probe)
        self._loop = SimulationLoop(self, recorder=recorder, probe=self.probe)

    # ------------------------------------------------------------------ #

    def _context(
        self, epoch_index: int, up_mask: np.ndarray, awake: Optional[np.ndarray]
    ) -> BalanceContext:
        return BalanceContext(
            topology=self.topology,
            system=self.system,
            links=self.links,
            link_costs=self.link_costs,
            up_mask=up_mask,
            round_index=epoch_index,
            rng=self.rng,
            task_graph=self.task_graph,
            resources=self.resources,
            node_speeds=self.node_speeds,
            awake=awake,
            probe=self.probe if self.probe.enabled else None,
        )

    def _latency_of(self, load: float, eid: int) -> float:
        if self.transfer_latency == 0:
            return 0.0
        if self.transfer_latency == "size":
            bw = float(self.links.bandwidth[eid])
            d = float(self.links.distance[eid])
            return load * d / bw * self.latency_scale
        return float(self.transfer_latency)

    def _next_period(self, node: int) -> float:
        base = self._periods[node]
        if self._clock_rng is None:
            return base
        j = self.wake_jitter
        return base * float(self._clock_rng.uniform(1.0 - j, 1.0 + j))

    def _push(self, when: float, priority: int, payload) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, priority, self._seq, payload))

    # ------------------------------------------------------------------ #

    def _wave(self, t: float, nodes: list[int], up_mask: np.ndarray) -> None:
        """One balancing wave: every node whose clock fired at *t*."""
        probe = self.probe
        traced = probe.enabled
        if traced:
            t0 = time.perf_counter()
            applied0 = self._ep_applied
            blocked0 = self._ep_blocked
            asleep0 = self._ep_asleep
        self.wakes_per_node[nodes] += 1
        awake: Optional[np.ndarray]
        if len(nodes) == self.topology.n_nodes:
            awake = None  # full wave — the degenerate (synchronous) case
        else:
            awake = np.zeros(self.topology.n_nodes, dtype=bool)
            awake[nodes] = True
        ctx = self._context(self._epoch_index, up_mask, awake)
        migrations = self.balancer.step(ctx)
        self._apply(migrations, t, up_mask, awake)
        if traced:
            probe.span("wake_wave", t0, time.perf_counter())
            probe.incr("engine.waves")
            probe.incr("engine.wake_nodes", len(nodes))
            probe.incr("engine.transfers_applied", self._ep_applied - applied0)
            probe.incr("engine.transfers_blocked", self._ep_blocked - blocked0)
            probe.incr("engine.transfers_asleep", self._ep_asleep - asleep0)

    def _apply(
        self,
        migrations: list[Migration],
        t: float,
        up_mask: np.ndarray,
        awake: Optional[np.ndarray],
    ) -> None:
        """Validate and apply a wave's orders (same contract as the
        synchronous engine: an invalid order is a balancer bug and
        raises; a fault-refused or sleeping-endpoints order is counted
        and dropped)."""
        capacity = np.zeros(self.topology.n_edges, dtype=np.int64)
        for m in migrations:
            if awake is not None and not (awake[m.src] or awake[m.dst]):
                # An async-oblivious balancer planned a move between two
                # nodes whose clocks did not fire: the decision never
                # happened. Orders touching an awake endpoint survive —
                # src awake is a push (sender-initiated), dst awake a
                # pull (receiver-initiated, e.g. work stealing).
                self._ep_asleep += 1
                continue
            if not self.system.is_alive(m.task_id):
                raise SimulationError(f"balancer ordered a move of dead task {m.task_id}")
            loc = self.system.location_of(m.task_id)
            if loc != m.src:
                raise SimulationError(
                    f"task {m.task_id} is at node {loc}, not at claimed source {m.src}"
                )
            eid = self.topology.edge_id(m.src, m.dst)  # raises on non-edges
            if not up_mask[eid]:
                self._ep_blocked += 1
                continue
            if capacity[eid] + 1 > self.link_capacity:
                # More orders over one link than a single step may
                # schedule — a balancer bug, exactly as on the sync path.
                raise SimulationError(
                    f"link ({m.src}, {m.dst}) over capacity: "
                    f"{capacity[eid] + 1} > {self.link_capacity}"
                )
            if capacity[eid] + self._ep_link_used[eid] + 1 > self.link_capacity:
                # The link's per-time-unit budget was already spent by
                # an earlier wave this epoch (only possible once clocks
                # desynchronise): the link is busy and the transfer is
                # refused, like a faulted link — the paper's "a single
                # load per link per time unit" holds in continuous time.
                self._ep_blocked += 1
                continue
            capacity[eid] += 1
            load = self.system.load_of(m.task_id)
            latency = self._latency_of(load, eid)
            if latency <= 0:
                self.system.move(m.task_id, m.dst)
            else:
                self.system.send_to_transit(m.task_id)
                self._push(t + latency, _ARRIVAL, (m.task_id, m.dst))
            self._ep_applied += 1
            self._ep_work += load * float(self.link_costs[eid])
            self._ep_heat += m.heat
        self._ep_link_used += capacity

    # ------------------------- kernel driver hooks -------------------- #

    def prepare(self, reset: bool) -> int:
        """Full reset (the event engine does not support continuation)."""
        self.balancer.reset(self._context(0, self._all_up, None))
        self.events_processed = 0
        self.wakes_per_node[:] = 0
        # Land anything still on the wire from a previous run (arrival
        # events left in the old heap) so a fresh run starts with every
        # task on a node — the event-engine analogue of the synchronous
        # engine draining its wire dict on reset.
        for when, priority, _seq, payload in sorted(getattr(self, "_heap", [])):
            if priority == _ARRIVAL:
                tid, dest = payload
                if self.system.is_alive(tid):
                    self.system.deliver(tid, dest)
        self._heap: list[tuple] = []
        self._seq = 0
        self._epoch_index = 0
        self._ep_applied = 0
        self._ep_work = 0.0
        self._ep_heat = 0.0
        self._ep_blocked = 0
        self._ep_asleep = 0
        # Per-link transfers already scheduled this epoch (= time
        # unit): caps cross-wave traffic at link_capacity per epoch.
        self._ep_link_used = np.zeros(self.topology.n_edges, dtype=np.int64)
        self._up_mask = self._all_up
        return 0

    def play_round(self, round_index: int) -> RoundStats:
        """Drain the event heap through epoch *round_index*.

        One epoch spans ``epoch`` simulation-time units; its boundary
        events (begin/churn/end) are scheduled here, wakes and arrivals
        re-schedule themselves. Returns when the epoch-end marker pops,
        handing the epoch's accumulated counters to the kernel.
        """
        when = round_index * self.epoch
        self._push(when, _EPOCH_BEGIN, round_index)
        if self.dynamic is not None:
            self._push(when, _CHURN, round_index)
        self._push(when, _EPOCH_END, round_index)
        if round_index == 0:
            for node in range(self.topology.n_nodes):
                self._push(0.0, _WAKE, node)

        events0 = self.events_processed
        heap = self._heap
        while heap:
            t, priority, _seq, payload = heapq.heappop(heap)
            self.now = t
            self.events_processed += 1

            if priority == _WAKE:
                # Batch every clock that fires at this exact instant
                # into one wave (the degenerate config batches *all*
                # nodes, reproducing the synchronous round).
                nodes = [payload]
                while heap and heap[0][0] == t and heap[0][1] == _WAKE:
                    nodes.append(heapq.heappop(heap)[3])
                    self.events_processed += 1
                self._wave(t, nodes, self._up_mask)
                for node in nodes:
                    self._push(t + self._next_period(node), _WAKE, node)

            elif priority == _ARRIVAL:
                tid, dest = payload
                if self.system.is_alive(tid):  # may have completed on the wire
                    self.system.deliver(tid, dest)

            elif priority == _EPOCH_BEGIN:
                self._epoch_index = payload
                if self.fault_model is not None:
                    self.fault_model.advance(payload)
                    self._up_mask = self.fault_model.up_mask()

            elif priority == _CHURN:
                self._churn()

            else:  # _EPOCH_END — the kernel's observation point
                if self.probe.enabled:
                    self.probe.incr(
                        "engine.heap_pops", self.events_processed - events0
                    )
                stats = RoundStats(
                    applied=self._ep_applied,
                    work=self._ep_work,
                    heat=self._ep_heat,
                    blocked=self._ep_blocked,
                    asleep=self._ep_asleep,
                    n_tasks=self.system.n_tasks,
                )
                self._ep_applied = 0
                self._ep_work = 0.0
                self._ep_heat = 0.0
                self._ep_blocked = 0
                self._ep_asleep = 0
                self._ep_link_used[:] = 0
                return stats

        raise SimulationError(
            "event heap drained without reaching an epoch-end marker"
        )  # pragma: no cover - wakes always re-schedule themselves

    # ------------------------------------------------------------------ #

    def run(self, max_rounds: int = 1000) -> SimulationResult:
        """Simulate up to *max_rounds* epochs (early exit on convergence).

        One epoch spans ``epoch`` simulation-time units and produces one
        recorded round, so ``max_rounds`` plays the same budget role as
        in the synchronous engine.
        """
        return self._loop.run(max_rounds)


class EventFastSimulator(EventSimulator):
    """The ``events-fast`` engine: :class:`EventSimulator`, vectorised.

    Two changes, both pure evaluation-order optimisations:

    * Every :class:`~repro.interfaces.BalanceContext` carries
      ``fast=True``, so balancers with a batched step (PPLB) screen
      no-effect wakes — the ``candidate_floor`` × ``mu_s_base``
      monotone bound plus the batched Phase-A feasibilities — before
      entering their scalar decision bodies. The screen is sound (it
      only skips work the scalar sweep would have done with no effect
      and no RNG use), and a balancer whose configuration it cannot
      screen soundly (friction jitter draws RNG per *evaluated*
      candidate) detects that itself and falls back to the scalar
      decision path, keeping equivalence rather than speed.
    * The per-event tuple heap is replaced by the columnar stores of
      :mod:`repro.sim.event_buffers`: a :class:`WakeSchedule` (one
      next-wake slot per node; a same-instant wave is one vectorised
      compare-and-gather) and an :class:`ArrivalBuffer` (in-flight
      transfers as parallel columns). Both consume events in the
      heap's exact ``(time, priority, insertion)`` order, and jitter
      draws still happen one per rescheduled wake in wave order, so
      the clock RNG stream is untouched.

    The engine therefore reproduces :class:`EventSimulator` bit for bit
    on every configuration — records, RNG state, final loads, event
    counts (``tests/sim/test_events_fast_equivalence.py`` is the
    differential anchor) — while running the large-N async studies an
    order of magnitude faster (the ``events_fast`` block of
    ``benchmarks/results/BENCH_engine.json``).
    """

    def _context(
        self, epoch_index: int, up_mask: np.ndarray, awake: Optional[np.ndarray]
    ) -> BalanceContext:
        ctx = super()._context(epoch_index, up_mask, awake)
        ctx.fast = True
        return ctx

    def _push(self, when: float, priority: int, payload) -> None:
        """Route events into the columnar stores (no heap exists here).

        The only events pushed from shared code paths are the
        latency-delayed arrivals scheduled by :meth:`_apply`; wakes and
        epoch markers are handled inline by :meth:`play_round`.
        """
        if priority != _ARRIVAL:  # pragma: no cover - engine invariant
            raise SimulationError(
                f"events-fast scheduled a non-arrival event (priority {priority})"
            )
        tid, dest = payload
        self._arrivals.push(when, tid, dest)

    # ------------------------- kernel driver hooks -------------------- #

    def prepare(self, reset: bool) -> int:
        """Full reset, landing any leftover in-flight transfers first
        (the columnar analogue of the scalar engine's heap drain)."""
        self.balancer.reset(self._context(0, self._all_up, None))
        self.events_processed = 0
        self.wakes_per_node[:] = 0
        arrivals = getattr(self, "_arrivals", None)
        if arrivals is not None:
            for tid, dest in arrivals.drain_in_order():
                if self.system.is_alive(tid):
                    self.system.deliver(tid, dest)
        self._arrivals = ArrivalBuffer()
        self._wakes = WakeSchedule(self.topology.n_nodes)
        self._epoch_index = 0
        self._ep_applied = 0
        self._ep_work = 0.0
        self._ep_heat = 0.0
        self._ep_blocked = 0
        self._ep_asleep = 0
        self._ep_link_used = np.zeros(self.topology.n_edges, dtype=np.int64)
        self._up_mask = self._all_up
        return 0

    def play_round(self, round_index: int) -> RoundStats:
        """Drain the columnar event stores through epoch *round_index*.

        Identical schedule to the scalar :meth:`EventSimulator.play_round`:
        each iteration consumes the lexicographically smallest
        ``(time, priority)`` event among the pending wakes, arrivals and
        this epoch's begin/churn/end markers. Priorities are distinct
        per candidate class, so the minimum is unambiguous and equals
        the heap's pop order; insertion ranks inside the stores
        reproduce the heap's sequence-number tie-break.
        """
        when = round_index * self.epoch
        if round_index == 0:
            self._wakes.schedule_all(0.0)
        events0 = self.events_processed
        wakes = self._wakes
        arrivals = self._arrivals
        system = self.system
        begin_pending = True
        churn_pending = self.dynamic is not None

        while True:
            t, priority = when, _EPOCH_END
            if churn_pending:
                t, priority = when, _CHURN
            ta = arrivals.peek_time()
            if (ta, _ARRIVAL) < (t, priority):
                t, priority = ta, _ARRIVAL
            if begin_pending and (when, _EPOCH_BEGIN) < (t, priority):
                t, priority = when, _EPOCH_BEGIN
            tw = wakes.peek_time()
            if (tw, _WAKE) < (t, priority):
                t, priority = tw, _WAKE

            self.now = t

            if priority == _WAKE:
                wave = wakes.pop_wave(t)
                nodes = [int(node) for node in wave]
                self.events_processed += len(nodes)
                self._wave(t, nodes, self._up_mask)
                if self._clock_rng is None:
                    wakes.schedule(wave, t + self._periods[wave])
                else:
                    # One jitter draw per rescheduled wake, in wave
                    # order — the scalar re-push loop's RNG sequence.
                    jittered = np.empty(len(nodes), dtype=np.float64)
                    for k, node in enumerate(nodes):
                        jittered[k] = t + self._next_period(node)
                    wakes.schedule(wave, jittered)

            elif priority == _ARRIVAL:
                self.events_processed += 1
                tid, dest = arrivals.pop_earliest()
                if system.is_alive(tid):  # may have completed on the wire
                    system.deliver(tid, dest)

            elif priority == _EPOCH_BEGIN:
                self.events_processed += 1
                begin_pending = False
                self._epoch_index = round_index
                if self.fault_model is not None:
                    self.fault_model.advance(round_index)
                    self._up_mask = self.fault_model.up_mask()

            elif priority == _CHURN:
                self.events_processed += 1
                churn_pending = False
                self._churn()

            else:  # _EPOCH_END — the kernel's observation point
                self.events_processed += 1
                if self.probe.enabled:
                    self.probe.incr(
                        "engine.buffer_pops", self.events_processed - events0
                    )
                stats = RoundStats(
                    applied=self._ep_applied,
                    work=self._ep_work,
                    heat=self._ep_heat,
                    blocked=self._ep_blocked,
                    asleep=self._ep_asleep,
                    n_tasks=system.n_tasks,
                )
                self._ep_applied = 0
                self._ep_work = 0.0
                self._ep_heat = 0.0
                self._ep_blocked = 0
                self._ep_asleep = 0
                self._ep_link_used[:] = 0
                return stats
