"""Columnar round logs and pluggable recorders.

Every engine used to materialise one Python :class:`RoundRecord` per
round into an unbounded list. At production scale (million-round runs,
thousands of nodes) that measurement pipeline dominates memory — and
often time — long before the balancing math does. This module replaces
it with two cooperating pieces:

* :class:`RoundLog` — a columnar store: one preallocated, growable
  NumPy array per metric field. Appending a round writes twelve array
  slots; materialising :class:`~repro.sim.results.RoundRecord` objects
  happens only when somebody actually asks for them. The log is also
  the wire format: ``to_columns``/``from_columns`` serialise the whole
  history as one array per field (keys stored once, not once per
  round), which is what shrinks runner-cache entries.
* :class:`Recorder` — the observation policy. The simulation kernel
  (:class:`~repro.sim.kernel.SimulationLoop`) calls
  :meth:`Recorder.observe` once per round with plain scalars; the
  recorder decides what to keep:

  ========================= ==========================================
  ``full``                  every round, bit-for-bit what the eager
                            record list used to hold (the default)
  ``thin:k``                every k-th round plus the last one, with
                            exact running totals for the skipped rounds
  ``summary``               no per-round history at all — O(1) running
                            aggregates, built for million-round runs
  ========================= ==========================================

Recorders are named by spec strings (``"full"``, ``"thin:50"``,
``"summary"``) so they can ride inside a :class:`~repro.runner.spec.
RunSpec`, enter the result-cache key and be selected from the CLI
(``--recorder``).
"""

from __future__ import annotations

import math
from typing import Sequence, Union

from repro.exceptions import ConfigurationError
from repro.sim.results import ROUND_FIELDS, RoundLog, SimulationResult

#: position of each metric in an observe() row — derived from the
#: columnar schema so the aggregating recorders can never drift from
#: the field order the kernel and the log agree on.
_COL = {name: i for i, (name, _dtype) in enumerate(ROUND_FIELDS)}

__all__ = [
    "RoundLog",
    "Recorder",
    "FullRecorder",
    "ThinningRecorder",
    "SummaryRecorder",
    "RecorderSpec",
    "make_recorder",
    "recorder_tag",
]

#: what a ``recorder=`` engine/spec knob accepts.
RecorderSpec = Union[str, "Recorder"]


class Recorder:
    """Observation policy: what the kernel keeps of each round.

    The kernel drives every recorder through the same three calls:
    :meth:`start` once per run, :meth:`observe` once per round (plain
    scalars — no per-round object is allocated on the hot path), and
    :meth:`finalize` once at the end, which installs whatever was kept
    (a :class:`RoundLog`, running aggregates, or both) into the
    :class:`~repro.sim.results.SimulationResult`.

    Subclasses override :meth:`observe`; the base class records
    nothing (useful on its own as a null recorder for pure timing
    runs, though ``summary`` is almost always the better choice).
    """

    #: spec-string name (subclasses override; ``thin`` renders ``thin:k``).
    name = "null"

    def start(self) -> None:
        """Reset per-run state (recorders are reusable across runs)."""

    def observe(
        self,
        round_index: int,
        n_migrations: int,
        traffic_work: float,
        heat: float,
        cov: float,
        spread: float,
        max_load: float,
        min_load: float,
        in_flight: int,
        blocked: int,
        n_tasks: int,
        asleep: int,
    ) -> None:
        """Record one completed round (post-apply metrics)."""

    def finalize(self, result: SimulationResult) -> None:
        """Install the kept history/aggregates into *result*."""

    def tag(self) -> str:
        """The spec string this recorder answers to (cache-key form)."""
        return self.name


class FullRecorder(Recorder):
    """Keep every round — the pre-kernel behaviour, columnar now.

    The resulting :class:`~repro.sim.results.SimulationResult` exposes
    exactly the records the eager list used to hold (``result.records``
    materialises bit-for-bit equal :class:`RoundRecord` objects), so
    the scalar/fast and sync/async equivalence suites hold unchanged.
    No aggregates are stored: with the complete log present, totals are
    computed exactly from the columns.
    """

    name = "full"

    def __init__(self) -> None:
        self._log = RoundLog()

    def start(self) -> None:
        self._log = RoundLog()

    def observe(self, *row) -> None:  # noqa: D102 - inherited contract
        self._log.append_row(*row)

    def finalize(self, result: SimulationResult) -> None:
        result.log = self._log
        result.aggregates = None


class _AggregatingRecorder(Recorder):
    """Shared running-total machinery for thinning/summary recorders.

    Tracks in O(1) memory everything the result's summary surface
    (``n_rounds``, ``total_*``, ``summary_row``) needs, so results
    whose logs are thinned or empty still report exact totals.
    """

    def start(self) -> None:
        self._rounds = 0
        self._migrations = 0
        self._traffic = 0.0
        self._heat = 0.0
        self._blocked = 0
        self._asleep = 0
        self._cov_sum = 0.0
        self._spread_min = math.inf

    def _accumulate(self, row: Sequence) -> None:
        self._rounds += 1
        self._migrations += row[_COL["n_migrations"]]
        self._traffic += row[_COL["traffic_work"]]
        self._heat += row[_COL["heat"]]
        self._cov_sum += row[_COL["cov"]]
        self._spread_min = min(self._spread_min, row[_COL["spread"]])
        self._blocked += row[_COL["blocked"]]
        self._asleep += row[_COL["asleep"]]

    def _aggregates(self) -> dict[str, float]:
        return {
            "rounds": self._rounds,
            "migrations": self._migrations,
            "traffic": self._traffic,
            "heat": self._heat,
            "blocked": self._blocked,
            "asleep": self._asleep,
            "cov_mean": self._cov_sum / self._rounds if self._rounds else 0.0,
            "spread_min": self._spread_min if self._rounds else 0.0,
        }


class ThinningRecorder(_AggregatingRecorder):
    """Keep every *k*-th round plus the last, with exact totals.

    The kept rounds give the convergence curve its shape at 1/k the
    memory; the running aggregates keep ``total_migrations`` and
    friends exact even though most rounds never enter the log.
    """

    name = "thin"

    def __init__(self, every: int):
        if every < 1:
            raise ConfigurationError(
                f"thinning stride must be >= 1, got {every}"
            )
        self.every = int(every)
        self._log = RoundLog()
        self._last_row: tuple | None = None

    def start(self) -> None:
        super().start()
        self._log = RoundLog()
        self._last_row = None

    def observe(self, *row) -> None:  # noqa: D102 - inherited contract
        self._accumulate(row)
        if (self._rounds - 1) % self.every == 0:
            self._log.append_row(*row)
            self._last_row = None
        else:
            self._last_row = row

    def finalize(self, result: SimulationResult) -> None:
        if self._last_row is not None:  # always keep the final round
            self._log.append_row(*self._last_row)
            self._last_row = None
        result.log = self._log
        result.aggregates = self._aggregates()

    def tag(self) -> str:
        return f"thin:{self.every}"


class SummaryRecorder(_AggregatingRecorder):
    """Stream running aggregates only — O(1) memory at any round count.

    Nothing per-round is retained (``result.records`` is empty); the
    result still answers ``n_rounds``, ``total_migrations``,
    ``total_traffic``, ``total_heat`` and ``summary_row()`` exactly,
    plus the mean CoV and minimum spread seen. Built for million-round
    endurance runs where even a columnar log is dead weight.
    """

    name = "summary"

    def observe(self, *row) -> None:  # noqa: D102 - inherited contract
        self._accumulate(row)

    def finalize(self, result: SimulationResult) -> None:
        result.log = RoundLog()
        result.aggregates = self._aggregates()


def make_recorder(spec: RecorderSpec = "full") -> Recorder:
    """Build a recorder from a spec string (or pass an instance through).

    Accepted spec strings: ``"full"``, ``"summary"``, ``"thin:<k>"``
    with integer ``k >= 1``. Unknown specs raise
    :class:`~repro.exceptions.ConfigurationError`.
    """
    if isinstance(spec, Recorder):
        return spec
    if spec == "full":
        return FullRecorder()
    if spec == "summary":
        return SummaryRecorder()
    if isinstance(spec, str) and spec.startswith("thin:"):
        try:
            every = int(spec.split(":", 1)[1])
        except ValueError:
            raise ConfigurationError(
                f"bad thinning stride in recorder spec {spec!r} "
                f"(expected thin:<int>)"
            ) from None
        return ThinningRecorder(every)
    raise ConfigurationError(
        f"unknown recorder spec {spec!r}; expected 'full', 'summary' "
        f"or 'thin:<k>'"
    )


def recorder_tag(spec: RecorderSpec) -> str:
    """Canonical spec string for *spec* (validates along the way)."""
    return make_recorder(spec).tag()
