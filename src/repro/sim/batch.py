"""Replicate-batched simulation: the ``rounds-batch`` engine.

:class:`BatchSimulator` runs S independent replicates of one scenario —
same topology, same algorithm config, different seeds — through the
``rounds-fast`` protocol *together*, amortising the per-round Python and
small-array NumPy overhead across the replicate axis:

* the Phase-B initiation screen of every replicate is evaluated as one
  stacked ``(S, flat)`` array expression over the shared CSR adjacency
  (built once, from the one :class:`~repro.network.topology.Topology`
  object all replicates share),
* the Phase-A hop scores of every replicate's particle wave are gathered
  in one concatenated cross-replicate CSR expression,
* replicates whose screen comes back empty while no particle is in
  flight skip their balancer step entirely (the steady-state common
  case: the screen emptiness *proves* the step would have returned no
  orders, touched no state and drawn no RNG).

The batched precompute reaches each balancer as
:class:`~repro.core.balancer.BatchHints` on ``ctx.batch``; the balancer
validates and consumes it inside its existing fast path. Every hinted
array is produced by the same IEEE-754 operations in the same order as
the solo fast path (row-wise elementwise operations on stacked arrays
are bitwise equal to the 1-D operations on each row), so each
replicate's records, final loads and terminal RNG state are **bit
identical** to a solo :class:`~repro.sim.engine.FastSimulator` run of
that seed — property-tested in ``tests/sim/test_batch_equivalence.py``.

Replicates converge independently: a replicate whose convergence check
fires simply drops out of the batch (active mask); the rest keep going.
Replicates the batch cannot precompute for — friction-jittered configs
(which draw RNG per evaluated candidate) or non-PPLB balancers — still
ride along in the same round loop, just without hints, exactly as the
solo fast path would run them.

Telemetry (per enabled probe, once per run): ``batch.replicates`` (batch
width S), ``batch.fill_ratio`` (mean fraction of replicates still
active per joint round), ``batch.fallbacks`` (replicates that ran
without cross-replicate precompute).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.balancer import _SMALL_WAVE, BatchHints, ParticlePlaneBalancer
from repro.core.surface import NeighborCache
from repro.exceptions import ConfigurationError
from repro.sim.engine import FastSimulator
from repro.sim.kernel import RoundStats
from repro.sim.results import SimulationResult

__all__ = ["BatchSimulator"]

#: sentinel hint value marking a replicate whose step is provably a
#: no-op this round (balancer idle + empty screen) and is skipped.
_SKIP = object()


class BatchSimulator:
    """Run S :class:`~repro.sim.engine.FastSimulator` replicates in
    lock-step, with cross-replicate precompute (see module docstring).

    Parameters
    ----------
    sims:
        The replicate simulators. All must be
        :class:`~repro.sim.engine.FastSimulator` instances sharing one
        :class:`~repro.network.topology.Topology` *object* (the batch
        reuses its CSR adjacency once for every stacked expression).
        Each keeps its own task system, RNG, links, faults and churn —
        the batch never mixes replicate state, only their screens.
    """

    def __init__(self, sims: Sequence[FastSimulator]):
        if not sims:
            raise ConfigurationError("BatchSimulator needs at least one replicate")
        for sim in sims:
            if not isinstance(sim, FastSimulator):
                raise ConfigurationError(
                    "BatchSimulator replicates must be FastSimulator instances "
                    f"(the rounds-fast engine), got {type(sim).__name__}"
                )
            if sim.topology is not sims[0].topology:
                raise ConfigurationError(
                    "BatchSimulator replicates must share one Topology object"
                )
        self.sims = list(sims)
        self.topology = sims[0].topology
        # Zero-copy views over topology.csr — the same arrays every
        # replicate's balancer NeighborCache exposes.
        self._cache = NeighborCache(self.topology)
        # Homogeneous replicates all use inv_s = 1 exactly, so one
        # shared ones-array serves every stacked row.
        self._ones = np.ones(self.topology.n_nodes)
        # A replicate is hintable when its balancer has the vectorised
        # fast path at all: PPLB without friction jitter (jitter draws
        # RNG per evaluated candidate, which no screen may elide).
        self._hintable = [
            isinstance(sim.balancer, ParticlePlaneBalancer)
            and sim.balancer.config.friction_jitter == 0.0
            for sim in self.sims
        ]
        # Round-invariant pieces of the stacked Phase-B screen, gathered
        # once per run: inv_s, the candidate-pair speed sum
        # ``inv_s[i] + inv_s[j]`` and the link-cost divisor ``e[eid]``
        # are all constant across rounds, so the per-round expression
        # touches only the load surface, the floors and the up mask.
        n_rep = len(self.sims)
        n = self.topology.n_nodes
        cache = self._cache
        flat = cache.flat_eids.shape[0]
        self._inv: list = [None] * n_rep
        self._mu_all = np.zeros(n_rep)
        self._sinv_all = np.zeros((n_rep, flat))
        self._eg_all = np.zeros((n_rep, flat))
        for i, sim in enumerate(self.sims):
            if not self._hintable[i]:
                continue
            cfg = sim.balancer.config
            if cfg.speed_aware and sim.node_speeds is not None:
                inv_s = 1.0 / np.asarray(sim.node_speeds, dtype=np.float64)
            else:
                inv_s = self._ones
            self._inv[i] = inv_s
            self._mu_all[i] = cfg.mu_s_base
            self._sinv_all[i] = inv_s[cache.flat_rows] + inv_s[cache.flat_nbrs]
            self._eg_all[i] = sim.link_costs[cache.flat_eids]
        # With no fault process anywhere the up mask is all-True every
        # round and ``up & ok`` reduces to ``ok`` — skip the gather.
        self._faultless = all(sim.fault_model is None for sim in self.sims)
        self._probe_on = [sim.probe.enabled for sim in self.sims]
        # Steady lanes: once a lane with no churn, no fault process and
        # an empty wire skips a round, no source of mutation remains —
        # every later round is the same skip over the same frozen
        # surface, so both the screen and the imbalance summary are
        # cached until the run ends (reset per run()).
        self._steady = [False] * n_rep
        self._summ_cache: list = [None] * n_rep
        # Per-round scratch (rows are filled for the active subset).
        self._h_buf = np.empty((n_rep, n))
        self._fl_buf = np.empty((n_rep, n))
        self._ol_buf = np.empty((n_rep, n))
        self._upg_buf = np.empty((n_rep, flat), dtype=bool)

    # ------------------------------------------------------------------ #

    def run(self, max_rounds: int = 1000, reset: bool = True) -> list[SimulationResult]:
        """Simulate every replicate; return their results in input order.

        Each result is bit-identical to ``sims[i].run(max_rounds,
        reset=reset)`` run solo (records, summaries, terminal RNG state;
        ``wall_time_s`` is, as everywhere, the one measured field).
        """
        sims = self.sims
        n_rep = len(sims)
        states = [sim._loop.begin(max_rounds, reset) for sim in sims]
        active = list(range(n_rep))
        self._steady = [False] * n_rep
        self._summ_cache = [None] * n_rep
        fill_sum = 0.0
        rounds = 0

        while active:
            rounds += 1
            fill_sum += len(active) / n_rep
            ups = {l: sims[l].round_begin(states[l].r) for l in active}
            hints = self._prepare_round(active, ups)
            stats_by: list[RoundStats] = []
            for l in active:
                sim = sims[l]
                hint = hints.get(l)
                if hint is _SKIP:
                    # Idle balancer + empty screen: the step provably
                    # returns no orders, mutates nothing and draws no
                    # RNG (see _prepare_round), so the round reduces to
                    # the stats play_round would have produced.
                    stats = RoundStats(n_tasks=sim.system.n_tasks)
                else:
                    up = ups[l]
                    ctx = sim._context(states[l].r, up)
                    ctx.batch = hint
                    migrations = sim.balancer.step(ctx)
                    stats = sim.round_apply(migrations, up, states[l].r)
                stats_by.append(stats)
            # Observe every replicate off one stacked reduction (the
            # rounds are already played, so the surfaces are final).
            summs = self._stacked_summaries(active)
            for pos, l in enumerate(active):
                sims[l]._loop.observe_round(
                    states[l],
                    stats_by[pos],
                    summ=None if summs is None else summs[pos],
                )
            active = [l for l in active if not states[l].done]

        fill = fill_sum / rounds if rounds else 1.0
        fallbacks = n_rep - sum(self._hintable)
        for sim in sims:
            if sim.probe.enabled:
                sim.probe.incr("batch.replicates", n_rep)
                sim.probe.incr("batch.fill_ratio", round(fill, 4))
                sim.probe.incr("batch.fallbacks", fallbacks)
        return [sims[l]._loop.end(states[l]) for l in range(n_rep)]

    # ------------------------------------------------------------------ #

    def _stacked_summaries(self, active: list[int]) -> list[dict] | None:
        """This round's :func:`imbalance_summary` for every active
        replicate, from one stacked row-wise reduction.

        Row-wise ``mean``/``max``/``min``/``std`` over the last axis of
        a C-contiguous ``(L, n)`` array are bitwise equal to the 1-D
        reductions on each row (same pairwise-summation tree), and the
        derived scalars below repeat :func:`imbalance_summary`'s exact
        IEEE-754 operations — property-tested against the scalar path
        in the batch equivalence suite. Returns None (scalar fallback)
        when validation would reject a surface, so the per-replicate
        call raises the identical error.
        """
        sims = self.sims
        cached = self._summ_cache
        fresh = [l for l in active if cached[l] is None]
        computed: dict = {}
        if fresh:
            OL = self._ol_buf[: len(fresh)]
            for row, l in enumerate(fresh):
                OL[row] = sims[l].observed_loads()
            if (OL < -1e-9).any():
                return None
            mean_a = OL.mean(axis=1)
            max_a = OL.max(axis=1)
            min_a = OL.min(axis=1)
            std_a = OL.std(axis=1)
            for row, l in enumerate(fresh):
                mean = float(mean_a[row])
                mx = float(max_a[row])
                mn = float(min_a[row])
                std = float(std_a[row])
                computed[l] = {
                    "mean": mean,
                    "max": mx,
                    "min": mn,
                    "std": std,
                    "cov": std / mean if mean > 0 else 0.0,
                    "spread": mx - mn,
                    "normalized_spread": (mx - mn) / mean if mean > 0 else 0.0,
                }
                if self._steady[l]:
                    # Frozen surface (see _prepare_round): every later
                    # round observes these exact values.
                    cached[l] = computed[l]
        return [cached[l] if cached[l] is not None else computed[l] for l in active]

    def _prepare_round(self, active: list[int], ups: dict) -> dict:
        """Stacked screens for this round's hintable replicates.

        Returns ``{replicate: BatchHints | _SKIP}``; replicates absent
        from the mapping run the round unhinted.
        """
        sims = self.sims
        # Stacked Phase-B screens are built only for *idle* replicates
        # (no particle in flight): there Phase A provably appends no
        # migration, so the pre-step screen is always consumable and the
        # balancer never recomputes it — each screen is evaluated
        # exactly once per replicate-round, engine-side and stacked.
        # Replicates with in-flight particles keep their own screen
        # (Phase-A decisions may invalidate a pre-step one) and instead
        # get the concatenated Phase-A gather when their wave is large.
        hints: dict = {}
        lanes = []
        for l in active:
            if self._steady[l]:
                # Frozen lane (see __init__): the round this flag was
                # set, the screen came back empty with nothing in
                # flight, and no churn/fault/delivery source exists to
                # change any input since — the skip repeats verbatim.
                hints[l] = _SKIP
                continue
            bal = sims[l].balancer
            # The balancer must already be bound to the shared topology:
            # an unbound cache means step() would reset() first, which a
            # skip or a stale hint must never paper over.
            if (
                self._hintable[l]
                and not bal._motion
                and bal._cache is not None
                and bal._cache.topology is self.topology
            ):
                lanes.append(l)
        self._phase_a_hints(active, hints, ups)
        if not lanes:
            return hints

        cache = self._cache
        n_lanes = len(lanes)
        idx = np.fromiter(lanes, np.int64, count=n_lanes)
        H = self._h_buf[:n_lanes]
        FLOOR = self._fl_buf[:n_lanes]
        for row, l in enumerate(lanes):
            sim = sims[l]
            # The exact surface _StepState builds: effective loads when
            # speed-aware, plain loads (inv_s = 1) otherwise.
            np.multiply(sim.system.node_loads, self._inv[l], out=H[row])
            FLOOR[row] = sim.system.candidate_floor(
                sim.balancer.config.candidates_per_node
            )

        # Phase-B screen, all replicates at once — row-wise bitwise
        # equal to corrected_slopes_flat on each replicate's 1-D arrays
        # (same operands, same operation order, elementwise ops only;
        # the pair speed-sum and the e-divisor were gathered in
        # __init__, which only reorders *when* the constant values are
        # produced, not the operations producing the screen).
        rows = cache.flat_rows
        js = cache.flat_nbrs
        opt2d = (
            H[:, rows] - H[:, js] - FLOOR[:, rows] * self._sinv_all[idx]
        ) / self._eg_all[idx]
        okp = opt2d > self._mu_all[idx][:, None]
        if not self._faultless:
            # At Phase-B start of a hinted round no link is reserved yet
            # (`used` all-False), so `up & ~used` reduces to `up`; with
            # no fault process `up` is all-True and drops out entirely.
            eids = cache.flat_eids
            UPG = self._upg_buf[:n_lanes]
            for row, l in enumerate(lanes):
                UPG[row] = ups[l][eids]
            okp &= UPG
        b_any = okp.any(axis=1)

        for row, l in enumerate(lanes):
            if not b_any[row] and not self._probe_on[l]:
                # Nothing in flight and the (sound, over-approximating)
                # screen admits no node: Phase A exits on its empty
                # wave, Phase B on its empty screen — no orders, no
                # state change, no RNG, and (probe disabled) no
                # counters. Skip the step.
                hints[l] = _SKIP
                sim = sims[l]
                if (
                    sim.dynamic is None
                    and sim.fault_model is None
                    and not sim._wire
                ):
                    self._steady[l] = True
            else:
                hints[l] = BatchHints(b_ok=okp[row])
        return hints

    def _phase_a_hints(self, active, hints, ups) -> None:
        """Concatenated cross-replicate Phase-A gather (see module doc).

        Covers the replicates the stacked screen cannot (particles in
        flight) whenever their decision wave is large enough for the
        balancer's own batch path: the gather here is the same
        expression, just concatenated across replicates, and the
        balancer skips its per-replicate copy on consuming it.
        """
        sims = self.sims
        cache = self._cache
        waves = []  # (lane, tids, cur list, hstar list, cmu scalar)
        for l in active:
            if not self._hintable[l]:
                continue
            bal = sims[l].balancer
            cfg = bal.config
            # The decision wave is a subset of the motion set, so a
            # small motion set can never produce a gather-sized wave —
            # skip the prediction loop outright.
            if len(bal._motion) <= _SMALL_WAVE:
                continue
            if bal._cache is None or bal._cache.topology is not self.topology:
                continue
            # µk must be closed-form for a cross-replicate gather (the
            # same cases _batch_mu_k vectorises without per-particle
            # friction calls).
            if cfg.kappa == 0.0:
                mu_k = cfg.mu_k_base
            elif bal._friction is not None and bal._friction.uniform:
                mu_k = cfg.mu_k_base + cfg.kappa * cfg.mu_s_base
            else:
                continue
            system = sims[l].system
            # Predict the decision wave with the exact filters (and
            # order) _phase_a_fast applies — read-only, so the
            # prediction can only diverge on an engine bug, which the
            # balancer's tid validation then catches.
            tids: list[int] = []
            hstars: list[float] = []
            curs: list[int] = []
            for tid in sorted(bal._motion):
                if not system.is_alive(tid):
                    continue
                if system.in_transit(tid):
                    continue
                st = bal._motion[tid]
                if cfg.max_hops is not None and st.hops >= cfg.max_hops:
                    continue
                tids.append(tid)
                hstars.append(st.hstar)
                curs.append(system.location_of(tid))
            if len(tids) <= _SMALL_WAVE:
                continue  # the balancer inline-decides small waves
            waves.append((l, tids, curs, hstars, cfg.c0 * mu_k))
        if not waves:
            return

        n = self.topology.n_nodes
        n_waves = len(waves)
        H = np.empty((n_waves, n))
        UP = np.empty((n_waves, self.topology.n_edges), dtype=bool)
        E = np.empty((n_waves, self.topology.n_edges))
        for row, (l, _, _, _, _) in enumerate(waves):
            sim = sims[l]
            np.multiply(sim.system.node_loads, self._inv[l], out=H[row])
            UP[row] = ups[l]
            E[row] = sim.link_costs

        all_cur = np.concatenate(
            [np.asarray(curs, dtype=np.int64) for _, _, curs, _, _ in waves]
        )
        all_hstar = np.concatenate(
            [np.asarray(hs, dtype=np.float64) for _, _, _, hs, _ in waves]
        )
        # Per-particle c0·µk, already multiplied per replicate so mixed
        # configs stay exact (np.full ○ scalar-multiply commute
        # bitwise with the balancer's `cfg.c0 * mu_k` array product).
        all_cmu = np.concatenate(
            [np.full(len(tids), cmu) for _, tids, _, _, cmu in waves]
        )
        lane_rows = np.concatenate(
            [
                np.full(len(tids), row, dtype=np.int64)
                for row, (_, tids, _, _, _) in enumerate(waves)
            ]
        )
        # One CSR gather for every particle of every replicate — the
        # same expression _phase_a_fast runs per replicate.
        starts = cache.indptr[all_cur]
        counts = cache.indptr[all_cur + 1] - starts
        offsets = np.concatenate(([0], np.cumsum(counts)))
        slot = (
            np.arange(offsets[-1], dtype=np.int64)
            - np.repeat(offsets[:-1], counts)
            + np.repeat(starts, counts)
        )
        flat_js = cache.flat_nbrs[slot]
        flat_eids = cache.flat_eids[slot]
        row_rep = np.repeat(lane_rows, counts)
        drops_flat = np.repeat(all_cmu, counts) * E[row_rep, flat_eids]
        hop_flat = np.repeat(all_hstar, counts) - drops_flat - H[row_rep, flat_js]
        feas_flat = UP[row_rep, flat_eids] & (hop_flat > 0.0)

        p0 = 0
        for l, tids, curs, hstars, cmu in waves:
            p1 = p0 + len(tids)
            f0, f1 = offsets[p0], offsets[p1]
            hint = hints[l] = BatchHints()
            hint.a_tids = tuple(tids)
            hint.a_cur = all_cur[p0:p1]
            hint.a_offsets = offsets[p0 : p1 + 1] - f0
            hint.a_flat_js = flat_js[f0:f1]
            hint.a_flat_eids = flat_eids[f0:f1]
            hint.a_drops = drops_flat[f0:f1]
            hint.a_hops = hop_flat[f0:f1]
            hint.a_feas = feas_flat[f0:f1]
            p0 = p1
