"""The synchronous-round simulators.

:class:`Simulator` drives task-granular balancers (PPLB and the discrete
baselines); :class:`FluidSimulator` drives divisible-load balancers
(diffusion-family theory checks). Both are thin *drivers* for the shared
:class:`~repro.sim.kernel.SimulationLoop`: they supply the
engine-specific round body (fault realisation, delivery, churn, balancer
step, order application) while the kernel owns the lifecycle —
observation, recording (pluggable, see :mod:`repro.sim.recording`) and
convergence detection. Both:

* realise link faults at round start (balancers then see the same
  ``up_mask`` the engine enforces),
* validate every order defensively (a bad order is a balancer bug and
  raises :class:`~repro.exceptions.SimulationError` — the engine never
  silently repairs).

Convergence (task mode): the system is converged when, for
``quiet_rounds`` consecutive rounds, no migrations were applied *and*
the balancer reports itself idle (no in-flight particles). The recorded
``converged_round`` is the first round of that quiet window — the round
after which nothing ever changed. Fluid mode instead converges when the
max−min spread drops below ``spread_tol``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.interfaces import BalanceContext, Balancer, FluidBalancer, Migration
from repro.network.faults import FaultModel
from repro.network.links import LinkAttributes, link_costs
from repro.network.topology import Topology
from repro.rng import RngLike, ensure_rng
from repro.sim.kernel import RoundDriver, RoundStats, SimulationLoop, TaskStateMixin
from repro.sim.recording import RecorderSpec
from repro.sim.results import SimulationResult
from repro.sim.telemetry import ProbeSpec, make_probe
from repro.tasks.resources import ResourceMap
from repro.tasks.task import TaskSystem
from repro.tasks.task_graph import TaskGraph
from repro.workloads.dynamic import DynamicWorkload


@dataclass(frozen=True)
class ConvergenceCriteria:
    """When to stop early.

    Attributes
    ----------
    quiet_rounds:
        Consecutive migration-free, balancer-idle rounds that count as
        converged (task mode).
    spread_tol:
        Max−min spread threshold (fluid mode; also used by task mode as
        an *additional* early-exit when > 0 and the balancer is idle).
    min_rounds:
        Never declare convergence before this many rounds.
    """

    quiet_rounds: int = 5
    spread_tol: float = 0.0
    min_rounds: int = 1

    def __post_init__(self) -> None:
        if self.quiet_rounds < 1:
            raise ConfigurationError(f"quiet_rounds must be >= 1, got {self.quiet_rounds}")
        if self.spread_tol < 0:
            raise ConfigurationError(f"spread_tol must be >= 0, got {self.spread_tol}")
        if self.min_rounds < 0:
            raise ConfigurationError(f"min_rounds must be >= 0, got {self.min_rounds}")


class Simulator(TaskStateMixin, RoundDriver):
    """Task-granular synchronous simulation (the paper's machine model).

    Parameters
    ----------
    topology, system:
        The network and its (pre-populated) task system.
    balancer:
        Any :class:`~repro.interfaces.Balancer`.
    links:
        Link attributes; defaults to uniform unit links.
    fault_model:
        Optional fault realisation (defaults to fault-free).
    task_graph, resources:
        Optional ``T``/``R`` passed through to the balancer context.
    dynamic:
        Optional workload churn applied at the start of each round.
    link_capacity:
        Tasks per link per round (paper: 1).
    transfer_latency:
        Rounds a migration spends on the wire before the task lands.
        0 (default) = instantaneous (the classical model); an ``int``
        applies uniformly; ``"size"`` computes ``ceil(load·d/bw)`` per
        hop — the paper's §1 concern that migration "means the transfer
        of a considerable amount of data" made concrete. While in
        transit the task's load is on no node (the hill already shrank,
        the valley hasn't filled).
    c1, e0:
        Link-cost constants (see :func:`repro.network.links.link_costs`).
    seed:
        Seed for the context RNG handed to stochastic balancers.
    criteria:
        Convergence criteria.
    track_journeys:
        When True, record per-task journeys: hop counts and origin →
        settle displacement (used by the locality experiments).
    node_speeds:
        Optional per-node processing speeds ``s_i > 0``. The balance
        target becomes capacity-proportional: all recorded imbalance
        metrics are computed on the *effective* loads ``h_i / s_i``
        (CoV 0 ⟺ every node holds load proportional to its speed), and
        the speeds are exposed to balancers through the context.
    recorder:
        Recording policy: ``"full"`` (every round, the default),
        ``"thin:<k>"`` (every k-th round plus the last, exact running
        totals) or ``"summary"`` (O(1) running aggregates, no per-round
        history) — or a :class:`~repro.sim.recording.Recorder`
        instance. See :mod:`repro.sim.recording`.
    probe:
        Telemetry policy: ``"null"`` (the default — off, provably zero
        behavior change), ``"counters"`` (aggregate counters/phase
        times on ``result.telemetry``) or ``"trace[:path]"`` (Chrome
        trace-event JSON per run) — or a
        :class:`~repro.sim.telemetry.Probe` instance. See
        :mod:`repro.sim.telemetry`.
    """

    def __init__(
        self,
        topology: Topology,
        system: TaskSystem,
        balancer: Balancer,
        links: Optional[LinkAttributes] = None,
        fault_model: Optional[FaultModel] = None,
        task_graph: Optional[TaskGraph] = None,
        resources: Optional[ResourceMap] = None,
        dynamic: Optional[DynamicWorkload] = None,
        link_capacity: int = 1,
        transfer_latency: int | str = 0,
        c1: float = 1.0,
        e0: float = 1.0,
        seed: RngLike = None,
        criteria: ConvergenceCriteria = ConvergenceCriteria(),
        track_journeys: bool = False,
        node_speeds: Optional[np.ndarray] = None,
        recorder: RecorderSpec = "full",
        probe: ProbeSpec = "null",
    ):
        if system.topology is not topology:
            raise ConfigurationError("task system was built for a different topology")
        if node_speeds is not None:
            node_speeds = np.asarray(node_speeds, dtype=np.float64)
            if node_speeds.shape != (topology.n_nodes,):
                raise ConfigurationError(
                    f"node_speeds must have shape ({topology.n_nodes},), got "
                    f"{node_speeds.shape}"
                )
            if (node_speeds <= 0).any():
                raise ConfigurationError("node speeds must be positive")
        if link_capacity < 1:
            raise ConfigurationError(f"link_capacity must be >= 1, got {link_capacity}")
        if isinstance(transfer_latency, str):
            if transfer_latency != "size":
                raise ConfigurationError(
                    f"transfer_latency must be an int >= 0 or 'size', got "
                    f"{transfer_latency!r}"
                )
        elif transfer_latency < 0:
            raise ConfigurationError(
                f"transfer_latency must be >= 0, got {transfer_latency}"
            )
        self.topology = topology
        self.system = system
        self.balancer = balancer
        self.links = links if links is not None else LinkAttributes.uniform(topology)
        if self.links.topology is not topology:
            raise ConfigurationError("link attributes were built for a different topology")
        self.fault_model = fault_model
        self.task_graph = task_graph
        self.resources = resources
        self.dynamic = dynamic
        self.link_capacity = link_capacity
        self.transfer_latency = transfer_latency
        self.criteria = criteria
        self.track_journeys = track_journeys
        self.node_speeds = node_speeds
        # wire: arrival round -> list of (task id, destination node)
        self._wire: dict[int, list[tuple[int, int]]] = {}
        self.rng = ensure_rng(seed)
        self.link_costs = link_costs(self.links, c1=c1, e0=e0)
        self._all_up = np.ones(topology.n_edges, dtype=bool)
        # journey tracking: task id -> (origin node, hops so far)
        self.task_hops: dict[int, int] = {}
        self.task_origin: dict[int, int] = {}
        self._rounds_done = 0  # global round counter across chained runs
        self.probe = make_probe(probe)
        self._loop = SimulationLoop(self, recorder=recorder, probe=self.probe)

    # ------------------------------------------------------------------ #

    def _context(self, round_index: int, up_mask: np.ndarray) -> BalanceContext:
        return BalanceContext(
            topology=self.topology,
            system=self.system,
            links=self.links,
            link_costs=self.link_costs,
            up_mask=up_mask,
            round_index=round_index,
            rng=self.rng,
            task_graph=self.task_graph,
            resources=self.resources,
            node_speeds=self.node_speeds,
            probe=self.probe if self.probe.enabled else None,
        )

    def _latency_of(self, load: float, eid: int) -> int:
        if self.transfer_latency == 0:
            return 0
        if self.transfer_latency == "size":
            bw = float(self.links.bandwidth[eid])
            d = float(self.links.distance[eid])
            return max(int(np.ceil(load * d / bw)), 1)
        return int(self.transfer_latency)

    def _deliver_due(self, round_index: int) -> int:
        """Land tasks whose transit completes at *round_index*."""
        due = self._wire.pop(round_index, [])
        for tid, dest in due:
            if self.system.is_alive(tid):  # may have completed on the wire
                self.system.deliver(tid, dest)
        return len(due)

    def _apply(
        self, migrations: list[Migration], up_mask: np.ndarray, round_index: int
    ) -> tuple[int, float, float, int]:
        """Validate and apply orders; returns (applied, work, heat, blocked)."""
        capacity = np.zeros(self.topology.n_edges, dtype=np.int64)
        applied = 0
        work = 0.0
        heat = 0.0
        blocked = 0
        for m in migrations:
            if not self.system.is_alive(m.task_id):
                raise SimulationError(f"balancer ordered a move of dead task {m.task_id}")
            loc = self.system.location_of(m.task_id)
            if loc != m.src:
                raise SimulationError(
                    f"task {m.task_id} is at node {loc}, not at claimed source {m.src}"
                )
            eid = self.topology.edge_id(m.src, m.dst)  # raises on non-edges
            if not up_mask[eid]:
                # A fault-oblivious balancer tried a dead link: the
                # transfer simply does not happen this round.
                blocked += 1
                continue
            capacity[eid] += 1
            if capacity[eid] > self.link_capacity:
                raise SimulationError(
                    f"link ({m.src}, {m.dst}) over capacity: "
                    f"{capacity[eid]} > {self.link_capacity}"
                )
            load = self.system.load_of(m.task_id)
            latency = self._latency_of(load, eid)
            if latency == 0:
                self.system.move(m.task_id, m.dst)
            else:
                self.system.send_to_transit(m.task_id)
                self._wire.setdefault(round_index + latency, []).append(
                    (m.task_id, m.dst)
                )
            applied += 1
            work += load * float(self.link_costs[eid])
            heat += m.heat
            if self.track_journeys:
                if m.task_id not in self.task_origin:
                    self.task_origin[m.task_id] = m.src
                self.task_hops[m.task_id] = self.task_hops.get(m.task_id, 0) + 1
        if self.probe.enabled:
            self.probe.incr("engine.transfers_applied", applied)
            self.probe.incr("engine.transfers_blocked", blocked)
        return applied, work, heat, blocked

    # ------------------------- kernel driver hooks -------------------- #

    def prepare(self, reset: bool) -> int:
        """Reset (or continue) run state; return the starting round."""
        if reset or self._rounds_done == 0:
            ctx0 = self._context(0, self._all_up)
            self.balancer.reset(ctx0)
            self._rounds_done = 0
            self.task_hops.clear()
            self.task_origin.clear()
            # Land anything still on the wire from a previous run so the
            # fresh run starts with every task on a node.
            for due in sorted(self._wire):
                self._deliver_due(due)
            self._wire.clear()
        return self._rounds_done

    def round_begin(self, round_index: int) -> np.ndarray:
        """Pre-step round work: faults → deliver → churn. Returns ``up``.

        Split out of :meth:`play_round` so a caller coordinating several
        simulators (replicate batching) can advance every replicate to
        the balancer-step boundary, precompute cross-replicate work, and
        then feed each balancer individually — with the exact same
        sequence of state mutations a solo :meth:`play_round` performs.
        """
        if self.fault_model is not None:
            self.fault_model.advance(round_index)
            up = self.fault_model.up_mask()
        else:
            up = self._all_up

        self._deliver_due(round_index)  # in-transit tasks landing this round

        if self.dynamic is not None:
            self._churn()
        return up

    def round_apply(
        self, migrations: list[Migration], up: np.ndarray, round_index: int
    ) -> RoundStats:
        """Post-step round work: validate/apply orders, package the stats."""
        applied, work, heat, blocked = self._apply(migrations, up, round_index)
        return RoundStats(
            applied=applied,
            work=work,
            heat=heat,
            blocked=blocked,
            n_tasks=self.system.n_tasks,
        )

    def play_round(self, round_index: int) -> RoundStats:
        """One synchronous round: faults → deliver → churn → step → apply."""
        up = self.round_begin(round_index)
        ctx = self._context(round_index, up)
        migrations = self.balancer.step(ctx)
        return self.round_apply(migrations, up, round_index)

    def finish(self, next_round: int) -> None:
        self._rounds_done = next_round

    # ------------------------------------------------------------------ #

    def run(self, max_rounds: int = 1000, reset: bool = True) -> SimulationResult:
        """Simulate up to *max_rounds* rounds (early exit on convergence).

        With ``reset=False`` the run *continues* a previous one: the
        balancer keeps its in-flight state, the round counter (and thus
        the arbiter's annealing clock) keeps advancing, and the returned
        result covers only the new rounds. Used to photograph the load
        surface mid-flight (``examples/surface_watch.py``).
        """
        return self._loop.run(max_rounds, reset=reset)

    # ------------------------------------------------------------------ #

    def journey_displacements(self) -> dict[int, int]:
        """Hop distance from each tracked task's origin to its final node.

        Requires ``track_journeys=True``. The *displacement* (shortest-
        path hops between endpoints) is bounded by the hop count and is
        the quantity Corollary 3 bounds via ``h*/µk``.
        """
        if not self.track_journeys:
            raise ConfigurationError("journey tracking was not enabled for this run")
        hd = self.topology.hop_distances
        out: dict[int, int] = {}
        for tid, origin in self.task_origin.items():
            if self.system.is_alive(tid):
                out[tid] = int(hd[origin, self.system.location_of(tid)])
        return out


class FastSimulator(Simulator):
    """The ``rounds-fast`` engine: :class:`Simulator` with the vectorised
    large-N fast path enabled.

    Identical protocol, records and RNG stream — the only difference is
    that every :class:`~repro.interfaces.BalanceContext` carries
    ``fast=True``, which lets balancers with a batched step (PPLB) run
    their CSR array path. Balancers without one behave exactly as under
    :class:`Simulator`, so ``rounds-fast`` is always safe to select; the
    exact-equivalence property is anchored by
    ``tests/sim/test_fast_equivalence.py``.
    """

    def _context(self, round_index: int, up_mask: np.ndarray) -> BalanceContext:
        ctx = super()._context(round_index, up_mask)
        ctx.fast = True
        return ctx


class FluidSimulator(RoundDriver):
    """Divisible-load simulation for :class:`FluidBalancer` algorithms.

    Owns the load vector ``h`` directly (no tasks). Used for the theory
    validations: diffusion convergence, optimal-α comparisons, and the
    dimension-exchange one-sweep hypercube result. Runs through the
    same :class:`~repro.sim.kernel.SimulationLoop` as the task engines
    (fluid mode: spread-tolerance convergence), so it accepts the same
    ``recorder`` policies.
    """

    fluid_mode = True

    def __init__(
        self,
        topology: Topology,
        initial_loads: np.ndarray,
        balancer: FluidBalancer,
        links: Optional[LinkAttributes] = None,
        c1: float = 1.0,
        e0: float = 1.0,
        seed: RngLike = None,
        criteria: ConvergenceCriteria = ConvergenceCriteria(spread_tol=1e-6),
        recorder: RecorderSpec = "full",
        probe: ProbeSpec = "null",
    ):
        h = np.asarray(initial_loads, dtype=np.float64).copy()
        if h.shape != (topology.n_nodes,):
            raise ConfigurationError(
                f"initial loads must have shape ({topology.n_nodes},), got {h.shape}"
            )
        if (h < 0).any():
            raise ConfigurationError("initial loads must be non-negative")
        self.topology = topology
        self.h = h
        self.balancer = balancer
        self.links = links if links is not None else LinkAttributes.uniform(topology)
        self.link_costs = link_costs(self.links, c1=c1, e0=e0)
        self.rng = ensure_rng(seed)
        self.criteria = criteria
        self.dynamic = None
        self._all_up = np.ones(topology.n_edges, dtype=bool)
        self.probe = make_probe(probe)
        self._loop = SimulationLoop(self, recorder=recorder, probe=self.probe)

    def _context(self, round_index: int) -> BalanceContext:
        # Fluid mode has no TaskSystem; balancers must not touch ctx.system.
        return BalanceContext(
            topology=self.topology,
            system=None,  # type: ignore[arg-type]
            links=self.links,
            link_costs=self.link_costs,
            up_mask=self._all_up,
            round_index=round_index,
            rng=self.rng,
            probe=self.probe if self.probe.enabled else None,
        )

    # ------------------------- kernel driver hooks -------------------- #

    def prepare(self, reset: bool) -> int:
        self.balancer.reset(self._context(0))
        return 0

    def play_round(self, round_index: int) -> RoundStats:
        """One fluid step: ask for flows, apply them, account traffic."""
        ctx = self._context(round_index)
        flow = np.asarray(self.balancer.fluid_step(self.h, ctx), dtype=np.float64)
        if flow.shape != (self.topology.n_edges,):
            raise SimulationError(
                f"fluid balancer returned flow of shape {flow.shape}, "
                f"expected ({self.topology.n_edges},)"
            )
        e = self.topology.edges
        np.subtract.at(self.h, e[:, 0], flow)
        np.add.at(self.h, e[:, 1], flow)
        if (self.h < -1e-9).any():
            raise SimulationError(
                "fluid step drove a node's load negative — flow exceeds supply"
            )
        self.h = np.maximum(self.h, 0.0)
        return RoundStats(
            applied=int((np.abs(flow) > 0).sum()),
            work=float(np.abs(flow) @ self.link_costs),
        )

    def observed_loads(self) -> np.ndarray:
        return self.h

    def in_flight_now(self) -> int:
        # Fluid balancers have no in-flight particles (and no idle()).
        return 0

    # ------------------------------------------------------------------ #

    def run(self, max_rounds: int = 10_000) -> SimulationResult:
        """Iterate fluid steps until the spread tolerance or *max_rounds*."""
        return self._loop.run(max_rounds)
