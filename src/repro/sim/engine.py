"""The synchronous-round simulators.

:class:`Simulator` drives task-granular balancers (PPLB and the discrete
baselines); :class:`FluidSimulator` drives divisible-load balancers
(diffusion-family theory checks). Both:

* realise link faults at round start (balancers then see the same
  ``up_mask`` the engine enforces),
* validate every order defensively (a bad order is a balancer bug and
  raises :class:`~repro.exceptions.SimulationError` — the engine never
  silently repairs),
* record per-round metrics and detect convergence.

Convergence (task mode): the system is converged when, for
``quiet_rounds`` consecutive rounds, no migrations were applied *and*
the balancer reports itself idle (no in-flight particles). The recorded
``converged_round`` is the first round of that quiet window — the round
after which nothing ever changed. Fluid mode instead converges when the
max−min spread drops below ``spread_tol``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.interfaces import BalanceContext, Balancer, FluidBalancer, Migration
from repro.network.faults import FaultModel
from repro.network.links import LinkAttributes, link_costs
from repro.network.topology import Topology
from repro.rng import RngLike, ensure_rng
from repro.sim.metrics import imbalance_summary
from repro.sim.results import RoundRecord, SimulationResult
from repro.tasks.resources import ResourceMap
from repro.tasks.task import TaskSystem
from repro.tasks.task_graph import TaskGraph
from repro.workloads.dynamic import DynamicWorkload


@dataclass(frozen=True)
class ConvergenceCriteria:
    """When to stop early.

    Attributes
    ----------
    quiet_rounds:
        Consecutive migration-free, balancer-idle rounds that count as
        converged (task mode).
    spread_tol:
        Max−min spread threshold (fluid mode; also used by task mode as
        an *additional* early-exit when > 0 and the balancer is idle).
    min_rounds:
        Never declare convergence before this many rounds.
    """

    quiet_rounds: int = 5
    spread_tol: float = 0.0
    min_rounds: int = 1

    def __post_init__(self) -> None:
        if self.quiet_rounds < 1:
            raise ConfigurationError(f"quiet_rounds must be >= 1, got {self.quiet_rounds}")
        if self.spread_tol < 0:
            raise ConfigurationError(f"spread_tol must be >= 0, got {self.spread_tol}")
        if self.min_rounds < 0:
            raise ConfigurationError(f"min_rounds must be >= 0, got {self.min_rounds}")


class Simulator:
    """Task-granular synchronous simulation (the paper's machine model).

    Parameters
    ----------
    topology, system:
        The network and its (pre-populated) task system.
    balancer:
        Any :class:`~repro.interfaces.Balancer`.
    links:
        Link attributes; defaults to uniform unit links.
    fault_model:
        Optional fault realisation (defaults to fault-free).
    task_graph, resources:
        Optional ``T``/``R`` passed through to the balancer context.
    dynamic:
        Optional workload churn applied at the start of each round.
    link_capacity:
        Tasks per link per round (paper: 1).
    transfer_latency:
        Rounds a migration spends on the wire before the task lands.
        0 (default) = instantaneous (the classical model); an ``int``
        applies uniformly; ``"size"`` computes ``ceil(load·d/bw)`` per
        hop — the paper's §1 concern that migration "means the transfer
        of a considerable amount of data" made concrete. While in
        transit the task's load is on no node (the hill already shrank,
        the valley hasn't filled).
    c1, e0:
        Link-cost constants (see :func:`repro.network.links.link_costs`).
    seed:
        Seed for the context RNG handed to stochastic balancers.
    criteria:
        Convergence criteria.
    track_journeys:
        When True, record per-task journeys: hop counts and origin →
        settle displacement (used by the locality experiments).
    node_speeds:
        Optional per-node processing speeds ``s_i > 0``. The balance
        target becomes capacity-proportional: all recorded imbalance
        metrics are computed on the *effective* loads ``h_i / s_i``
        (CoV 0 ⟺ every node holds load proportional to its speed), and
        the speeds are exposed to balancers through the context.
    """

    def __init__(
        self,
        topology: Topology,
        system: TaskSystem,
        balancer: Balancer,
        links: Optional[LinkAttributes] = None,
        fault_model: Optional[FaultModel] = None,
        task_graph: Optional[TaskGraph] = None,
        resources: Optional[ResourceMap] = None,
        dynamic: Optional[DynamicWorkload] = None,
        link_capacity: int = 1,
        transfer_latency: int | str = 0,
        c1: float = 1.0,
        e0: float = 1.0,
        seed: RngLike = None,
        criteria: ConvergenceCriteria = ConvergenceCriteria(),
        track_journeys: bool = False,
        node_speeds: Optional[np.ndarray] = None,
    ):
        if system.topology is not topology:
            raise ConfigurationError("task system was built for a different topology")
        if node_speeds is not None:
            node_speeds = np.asarray(node_speeds, dtype=np.float64)
            if node_speeds.shape != (topology.n_nodes,):
                raise ConfigurationError(
                    f"node_speeds must have shape ({topology.n_nodes},), got "
                    f"{node_speeds.shape}"
                )
            if (node_speeds <= 0).any():
                raise ConfigurationError("node speeds must be positive")
        if link_capacity < 1:
            raise ConfigurationError(f"link_capacity must be >= 1, got {link_capacity}")
        if isinstance(transfer_latency, str):
            if transfer_latency != "size":
                raise ConfigurationError(
                    f"transfer_latency must be an int >= 0 or 'size', got "
                    f"{transfer_latency!r}"
                )
        elif transfer_latency < 0:
            raise ConfigurationError(
                f"transfer_latency must be >= 0, got {transfer_latency}"
            )
        self.topology = topology
        self.system = system
        self.balancer = balancer
        self.links = links if links is not None else LinkAttributes.uniform(topology)
        if self.links.topology is not topology:
            raise ConfigurationError("link attributes were built for a different topology")
        self.fault_model = fault_model
        self.task_graph = task_graph
        self.resources = resources
        self.dynamic = dynamic
        self.link_capacity = link_capacity
        self.transfer_latency = transfer_latency
        self.criteria = criteria
        self.track_journeys = track_journeys
        self.node_speeds = node_speeds
        # wire: arrival round -> list of (task id, destination node)
        self._wire: dict[int, list[tuple[int, int]]] = {}
        self.rng = ensure_rng(seed)
        self.link_costs = link_costs(self.links, c1=c1, e0=e0)
        self._all_up = np.ones(topology.n_edges, dtype=bool)
        # journey tracking: task id -> (origin node, hops so far)
        self.task_hops: dict[int, int] = {}
        self.task_origin: dict[int, int] = {}
        self._rounds_done = 0  # global round counter across chained runs

    # ------------------------------------------------------------------ #

    def _context(self, round_index: int, up_mask: np.ndarray) -> BalanceContext:
        return BalanceContext(
            topology=self.topology,
            system=self.system,
            links=self.links,
            link_costs=self.link_costs,
            up_mask=up_mask,
            round_index=round_index,
            rng=self.rng,
            task_graph=self.task_graph,
            resources=self.resources,
            node_speeds=self.node_speeds,
        )

    def _effective_loads(self) -> np.ndarray:
        """Loads normalised by speed (the metric surface)."""
        h = self.system.node_loads
        if self.node_speeds is None:
            return h
        return h / self.node_speeds

    def _latency_of(self, load: float, eid: int) -> int:
        if self.transfer_latency == 0:
            return 0
        if self.transfer_latency == "size":
            bw = float(self.links.bandwidth[eid])
            d = float(self.links.distance[eid])
            return max(int(np.ceil(load * d / bw)), 1)
        return int(self.transfer_latency)

    def _deliver_due(self, round_index: int) -> int:
        """Land tasks whose transit completes at *round_index*."""
        due = self._wire.pop(round_index, [])
        for tid, dest in due:
            if self.system.is_alive(tid):  # may have completed on the wire
                self.system.deliver(tid, dest)
        return len(due)

    def _apply(
        self, migrations: list[Migration], up_mask: np.ndarray, round_index: int
    ) -> tuple[int, float, float, int]:
        """Validate and apply orders; returns (applied, work, heat, blocked)."""
        capacity = np.zeros(self.topology.n_edges, dtype=np.int64)
        applied = 0
        work = 0.0
        heat = 0.0
        blocked = 0
        for m in migrations:
            if not self.system.is_alive(m.task_id):
                raise SimulationError(f"balancer ordered a move of dead task {m.task_id}")
            loc = self.system.location_of(m.task_id)
            if loc != m.src:
                raise SimulationError(
                    f"task {m.task_id} is at node {loc}, not at claimed source {m.src}"
                )
            eid = self.topology.edge_id(m.src, m.dst)  # raises on non-edges
            if not up_mask[eid]:
                # A fault-oblivious balancer tried a dead link: the
                # transfer simply does not happen this round.
                blocked += 1
                continue
            capacity[eid] += 1
            if capacity[eid] > self.link_capacity:
                raise SimulationError(
                    f"link ({m.src}, {m.dst}) over capacity: "
                    f"{capacity[eid]} > {self.link_capacity}"
                )
            load = self.system.load_of(m.task_id)
            latency = self._latency_of(load, eid)
            if latency == 0:
                self.system.move(m.task_id, m.dst)
            else:
                self.system.send_to_transit(m.task_id)
                self._wire.setdefault(round_index + latency, []).append(
                    (m.task_id, m.dst)
                )
            applied += 1
            work += load * float(self.link_costs[eid])
            heat += m.heat
            if self.track_journeys:
                if m.task_id not in self.task_origin:
                    self.task_origin[m.task_id] = m.src
                self.task_hops[m.task_id] = self.task_hops.get(m.task_id, 0) + 1
        return applied, work, heat, blocked

    # ------------------------------------------------------------------ #

    def run(self, max_rounds: int = 1000, reset: bool = True) -> SimulationResult:
        """Simulate up to *max_rounds* rounds (early exit on convergence).

        With ``reset=False`` the run *continues* a previous one: the
        balancer keeps its in-flight state, the round counter (and thus
        the arbiter's annealing clock) keeps advancing, and the returned
        result covers only the new rounds. Used to photograph the load
        surface mid-flight (``examples/surface_watch.py``).
        """
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        result = SimulationResult(balancer_name=self.balancer.name)
        result.initial_summary = imbalance_summary(self._effective_loads())

        start = time.perf_counter()
        if reset or self._rounds_done == 0:
            ctx0 = self._context(0, self._all_up)
            self.balancer.reset(ctx0)
            self._rounds_done = 0
            self.task_hops.clear()
            self.task_origin.clear()
            # Land anything still on the wire from a previous run so the
            # fresh run starts with every task on a node.
            for due in sorted(self._wire):
                self._deliver_due(due)
            self._wire.clear()

        quiet = 0
        converged_at: int | None = None
        crit = self.criteria
        base = self._rounds_done

        for r in range(base, base + max_rounds):
            if self.fault_model is not None:
                self.fault_model.advance(r)
                up = self.fault_model.up_mask()
            else:
                up = self._all_up

            self._deliver_due(r)  # in-transit tasks landing this round

            if self.dynamic is not None:
                created, removed = self.dynamic.step(self.system)
                if self.task_graph is not None:
                    for tid in removed:
                        self.task_graph.drop_task(tid)
                if self.resources is not None:
                    for tid in removed:
                        self.resources.drop_task(tid)

            ctx = self._context(r, up)
            migrations = self.balancer.step(ctx)
            applied, work, heat, blocked = self._apply(migrations, up, r)

            summ = imbalance_summary(self._effective_loads())
            in_flight = 0 if self.balancer.idle() else getattr(self.balancer, "in_flight", 1)
            result.records.append(
                RoundRecord(
                    round_index=r,
                    n_migrations=applied,
                    traffic_work=work,
                    heat=heat,
                    cov=summ["cov"],
                    spread=summ["spread"],
                    max_load=summ["max"],
                    min_load=summ["min"],
                    in_flight=in_flight,
                    blocked=blocked,
                    n_tasks=self.system.n_tasks,
                )
            )

            # Convergence detection (skipped under churn: there is no
            # quiescent state to converge to).
            if self.dynamic is None:
                balanced_enough = (
                    crit.spread_tol > 0 and summ["spread"] <= crit.spread_tol
                )
                if (
                    applied == 0
                    and self.balancer.idle()
                    and self.system.n_in_transit == 0
                ):
                    quiet += 1
                else:
                    quiet = 0
                if r + 1 >= crit.min_rounds and (
                    quiet >= crit.quiet_rounds
                    or (balanced_enough and self.balancer.idle())
                ):
                    converged_at = r - quiet + 1 if quiet >= crit.quiet_rounds else r
                    break

        self._rounds_done = r + 1
        result.converged_round = converged_at
        result.final_summary = imbalance_summary(self._effective_loads())
        result.wall_time_s = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------ #

    def journey_displacements(self) -> dict[int, int]:
        """Hop distance from each tracked task's origin to its final node.

        Requires ``track_journeys=True``. The *displacement* (shortest-
        path hops between endpoints) is bounded by the hop count and is
        the quantity Corollary 3 bounds via ``h*/µk``.
        """
        if not self.track_journeys:
            raise ConfigurationError("journey tracking was not enabled for this run")
        hd = self.topology.hop_distances
        out: dict[int, int] = {}
        for tid, origin in self.task_origin.items():
            if self.system.is_alive(tid):
                out[tid] = int(hd[origin, self.system.location_of(tid)])
        return out


class FastSimulator(Simulator):
    """The ``rounds-fast`` engine: :class:`Simulator` with the vectorised
    large-N fast path enabled.

    Identical protocol, records and RNG stream — the only difference is
    that every :class:`~repro.interfaces.BalanceContext` carries
    ``fast=True``, which lets balancers with a batched step (PPLB) run
    their CSR array path. Balancers without one behave exactly as under
    :class:`Simulator`, so ``rounds-fast`` is always safe to select; the
    exact-equivalence property is anchored by
    ``tests/sim/test_fast_equivalence.py``.
    """

    def _context(self, round_index: int, up_mask: np.ndarray) -> BalanceContext:
        ctx = super()._context(round_index, up_mask)
        ctx.fast = True
        return ctx


class FluidSimulator:
    """Divisible-load simulation for :class:`FluidBalancer` algorithms.

    Owns the load vector ``h`` directly (no tasks). Used for the theory
    validations: diffusion convergence, optimal-α comparisons, and the
    dimension-exchange one-sweep hypercube result.
    """

    def __init__(
        self,
        topology: Topology,
        initial_loads: np.ndarray,
        balancer: FluidBalancer,
        links: Optional[LinkAttributes] = None,
        c1: float = 1.0,
        e0: float = 1.0,
        seed: RngLike = None,
        criteria: ConvergenceCriteria = ConvergenceCriteria(spread_tol=1e-6),
    ):
        h = np.asarray(initial_loads, dtype=np.float64).copy()
        if h.shape != (topology.n_nodes,):
            raise ConfigurationError(
                f"initial loads must have shape ({topology.n_nodes},), got {h.shape}"
            )
        if (h < 0).any():
            raise ConfigurationError("initial loads must be non-negative")
        self.topology = topology
        self.h = h
        self.balancer = balancer
        self.links = links if links is not None else LinkAttributes.uniform(topology)
        self.link_costs = link_costs(self.links, c1=c1, e0=e0)
        self.rng = ensure_rng(seed)
        self.criteria = criteria
        self._all_up = np.ones(topology.n_edges, dtype=bool)

    def _context(self, round_index: int) -> BalanceContext:
        # Fluid mode has no TaskSystem; balancers must not touch ctx.system.
        return BalanceContext(
            topology=self.topology,
            system=None,  # type: ignore[arg-type]
            links=self.links,
            link_costs=self.link_costs,
            up_mask=self._all_up,
            round_index=round_index,
            rng=self.rng,
        )

    def run(self, max_rounds: int = 10_000) -> SimulationResult:
        """Iterate fluid steps until the spread tolerance or *max_rounds*."""
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        result = SimulationResult(balancer_name=self.balancer.name)
        result.initial_summary = imbalance_summary(self.h)
        start = time.perf_counter()
        ctx0 = self._context(0)
        self.balancer.reset(ctx0)
        e = self.topology.edges
        converged_at: int | None = None

        for r in range(max_rounds):
            ctx = self._context(r)
            flow = np.asarray(self.balancer.fluid_step(self.h, ctx), dtype=np.float64)
            if flow.shape != (self.topology.n_edges,):
                raise SimulationError(
                    f"fluid balancer returned flow of shape {flow.shape}, "
                    f"expected ({self.topology.n_edges},)"
                )
            np.subtract.at(self.h, e[:, 0], flow)
            np.add.at(self.h, e[:, 1], flow)
            if (self.h < -1e-9).any():
                raise SimulationError(
                    "fluid step drove a node's load negative — flow exceeds supply"
                )
            self.h = np.maximum(self.h, 0.0)

            summ = imbalance_summary(self.h)
            work = float(np.abs(flow) @ self.link_costs)
            result.records.append(
                RoundRecord(
                    round_index=r,
                    n_migrations=int((np.abs(flow) > 0).sum()),
                    traffic_work=work,
                    heat=0.0,
                    cov=summ["cov"],
                    spread=summ["spread"],
                    max_load=summ["max"],
                    min_load=summ["min"],
                )
            )
            if summ["spread"] <= self.criteria.spread_tol and r + 1 >= self.criteria.min_rounds:
                converged_at = r
                break

        result.converged_round = converged_at
        result.final_summary = imbalance_summary(self.h)
        result.wall_time_s = time.perf_counter() - start
        return result
