"""Merge runner outcomes into the existing analysis structures.

The runner produces :class:`~repro.runner.runner.RunOutcome` objects;
the analysis layer speaks :class:`~repro.analysis.sweep.SweepResult`
and ``format_table`` rows. This module is the adapter — grouping
outcomes by a swept parameter and aggregating per-seed metrics with the
*same* ``mean_ci`` discipline (sorted keys, 6-decimal rounding) as
:func:`repro.analysis.sweep.run_sweep`, so downstream tooling (tables,
plots, convergence fits) consumes runner output unchanged.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.analysis.stats import mean_ci
from repro.analysis.sweep import SweepResult
from repro.exceptions import ConfigurationError
from repro.runner.runner import RunnerMetrics, RunOutcome
from repro.runner.sink import default_metrics
from repro.runner.spec import RunSpec
from repro.sim import SimulationResult

__all__ = [
    "default_metrics",
    "metrics_to_rows",
    "outcomes_to_rows",
    "outcomes_to_sweep",
    "spec_value",
]


def _outcome_metrics(
    outcome: RunOutcome,
    metrics_of: Callable[[SimulationResult], Mapping[str, float]],
) -> Mapping[str, float]:
    """Metric dict for one outcome, slim-aware.

    Full outcomes go through *metrics_of*; slim outcomes
    (``run_grid(..., keep_results=False)``, ``result is None``) already
    carry :func:`default_metrics` values, which are only valid to use
    when the caller asked for that same schema.
    """
    if outcome.result is not None:
        return metrics_of(outcome.result)
    if metrics_of is default_metrics and outcome.metrics is not None:
        return outcome.metrics
    raise ConfigurationError(
        f"outcome for {outcome.spec.label()} has no result payload "
        "(run_grid(..., keep_results=False)); custom metrics_of needs "
        "full results — re-run with keep_results=True"
    )


def spec_value(spec: RunSpec, parameter: str) -> object:
    """Look up a swept parameter's value inside a spec.

    Resolution order: scenario kwargs, algorithm kwargs, sim kwargs,
    then the spec's own fields (``scenario``, ``algorithm``, ``seed``,
    ``max_rounds``).
    """
    for kwargs in (spec.scenario_kwargs, spec.algorithm_kwargs, spec.sim_kwargs):
        if parameter in kwargs:
            return kwargs[parameter]
    if parameter in ("scenario", "algorithm", "seed", "max_rounds"):
        return getattr(spec, parameter)
    raise ConfigurationError(
        f"parameter {parameter!r} not found in spec {spec.label()}"
    )


def outcomes_to_sweep(
    parameter: str,
    outcomes: Sequence[RunOutcome],
    value_of: Callable[[RunSpec], object] | None = None,
    metrics_of: Callable[[SimulationResult], Mapping[str, float]] = default_metrics,
) -> SweepResult:
    """Aggregate grid outcomes into a :class:`SweepResult`.

    Outcomes are grouped by the swept value (first-appearance order,
    matching ``expand_grid``'s deterministic ordering); each group's
    per-seed metric dicts are aggregated into mean ± CI rows exactly
    like :func:`~repro.analysis.sweep.run_sweep` does, so the result
    plugs into every existing table/plot helper.
    """
    if not outcomes:
        raise ConfigurationError("cannot merge an empty list of outcomes")
    resolve = value_of if value_of is not None else (
        lambda spec: spec_value(spec, parameter)
    )

    grouped: dict[object, list[Mapping[str, float]]] = {}
    for outcome in outcomes:
        value = resolve(outcome.spec)
        grouped.setdefault(value, []).append(
            _outcome_metrics(outcome, metrics_of)
        )

    result = SweepResult(parameter=parameter)
    for value, per_seed in grouped.items():
        keys = sorted(per_seed[0].keys())
        row: dict[str, object] = {parameter: value}
        for key in keys:
            m, ci = mean_ci([float(d[key]) for d in per_seed])
            row[key] = round(m, 6)
            row[f"{key}_ci"] = round(ci, 6)
        result.points.append(value)
        result.rows.append(row)
        result.raw.append(per_seed)
    return result


def outcomes_to_rows(outcomes: Sequence[RunOutcome]) -> list[dict[str, object]]:
    """Per-run summary rows (one per outcome) for ``format_table``."""
    return [outcome.row() for outcome in outcomes]


def metrics_to_rows(metrics: RunnerMetrics) -> list[dict[str, object]]:
    """Per-spec runner-metric rows for ``format_table``.

    One row per spec (in spec order) with the spec label, whether it
    was replayed from the cache, and the in-worker seconds it cost
    (0 for hits) — the per-spec view behind
    :meth:`RunnerMetrics.summary`.
    """
    return [dict(row) for row in metrics.spec_rows]
