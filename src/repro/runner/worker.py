"""Spec execution: the function that runs inside worker processes.

:func:`execute_spec` is the single place a :class:`RunSpec` becomes a
simulation — the CLI's ``run`` command, the serial fallback and every
pool worker all call it, so serial and parallel runs are the *same
code* on different transports. Determinism contract: the result is a
pure function of the spec's content (scenario construction, balancer
config and the simulator RNG are all seeded from ``spec.seed``), which
is what licenses the content-addressed cache.

``spec.engine`` selects the execution model: ``"rounds"`` builds the
synchronous :class:`~repro.sim.Simulator`, ``"rounds-fast"`` its
vectorised twin :class:`~repro.sim.FastSimulator` (identical records,
array fast path for large N), ``"events"`` the asynchronous
:class:`~repro.sim.EventSimulator` and ``"events-fast"`` its batched
twin :class:`~repro.sim.EventFastSimulator` (identical records,
columnar event buffers). The task engines receive whatever
extras the scenario carries (per-node speeds, a churn process), so a
scenario means the same workload under any of them. ``"fluid"`` builds
the divisible-load :class:`~repro.sim.FluidSimulator` over the
scenario's *initial per-node loads* — the continuous-limit view of the
same setting; task-granular extras (churn, node speeds) have no fluid
counterpart and are not forwarded.

``execute_payload`` is the pool entry point: module-level (hence
picklable by reference) and returning the JSON payload rather than the
result object, so the bytes that cross the process boundary are exactly
the bytes that would be written to the cache.

``execute_batch`` is the replicate-batched sibling: a group of specs
identical up to ``seed`` becomes one :class:`~repro.sim.BatchSimulator`
run — the scenario topology is built once and shared across the lanes,
and each lane's result is bit-identical to what :func:`execute_spec`
would have produced for that seed alone (the batched engine's
contract). ``execute_task_payload`` is the pool entry point that
dispatches between the two shapes, so one ``map_timed`` call carries a
mix of plain and batched tasks.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.runner.registry import make_balancer
from repro.runner.spec import RunSpec
from repro.sim import (
    BatchSimulator,
    EventFastSimulator,
    EventSimulator,
    FastSimulator,
    FluidSimulator,
    SimulationResult,
    Simulator,
)
from repro.workloads import build_scenario

#: spec.engine -> task-granular simulator class (validated upstream by
#: RunSpec; "fluid" dispatches separately below).
_ENGINE_CLASSES = {
    "rounds": Simulator,
    "rounds-fast": FastSimulator,
    "events": EventSimulator,
    "events-fast": EventFastSimulator,
}


def execute_spec(spec: RunSpec) -> SimulationResult:
    """Run one spec to completion and return its result."""
    scenario = build_scenario(spec.scenario, seed=spec.seed, **spec.scenario_kwargs)
    balancer = make_balancer(spec.algorithm, **spec.algorithm_kwargs)
    if spec.engine == "fluid":
        sim = FluidSimulator(
            scenario.topology,
            scenario.system.node_loads,
            balancer,
            links=scenario.links,
            seed=spec.seed,
            recorder=spec.recorder,
            probe=spec.probe,
            **spec.sim_kwargs,
        )
        return sim.run(max_rounds=spec.max_rounds)
    engine_cls = _ENGINE_CLASSES.get(spec.engine)
    if engine_cls is None:
        # RunSpec validates eagerly, but specs rebuilt from hand-edited
        # JSON (or a stale cache manifest) can still carry names this
        # build does not know — fail with the roster, not a KeyError.
        raise ConfigurationError(
            f"unknown engine {spec.engine!r}; available: "
            f"{sorted([*_ENGINE_CLASSES, 'fluid'])}"
        )
    # Scenario-carried extras are defaults; explicit sim_kwargs win (a
    # spec may legitimately override e.g. node_speeds or dynamic).
    sim_kwargs: dict = {
        "links": scenario.links,
        "dynamic": scenario.dynamic,
        "node_speeds": scenario.node_speeds,
        "seed": spec.seed,
        "recorder": spec.recorder,
        "probe": spec.probe,
        **spec.sim_kwargs,
    }
    sim = engine_cls(scenario.topology, scenario.system, balancer, **sim_kwargs)
    return sim.run(max_rounds=spec.max_rounds)


def execute_batch(specs: Sequence[RunSpec]) -> list[SimulationResult]:
    """Run replicate specs as one batched simulation; results per spec.

    The specs must be identical up to ``seed``, request the
    ``rounds-fast`` engine and carry the null probe (the runner's
    grouping pass guarantees all three). The scenario is built once per
    seed but the *topology* only once — every lane shares the first
    lane's topology object, which is what lets
    :class:`~repro.sim.BatchSimulator` reuse one CSR adjacency across
    the batch. Topology construction consumes no randomness, so the
    shared object is exactly what each lane would have built itself,
    and each lane's result is bit-identical to a solo
    :func:`execute_spec` of that spec.
    """
    if not specs:
        raise ConfigurationError("execute_batch needs at least one spec")
    first = specs[0]
    for spec in specs:
        if spec.engine != "rounds-fast":
            raise ConfigurationError(
                f"replicate batching runs the rounds-fast engine only, "
                f"got {spec.engine!r}"
            )
    if len(specs) == 1:
        return [execute_spec(first)]
    sims = []
    topology = None
    for spec in specs:
        scenario = build_scenario(
            spec.scenario, seed=spec.seed, topology=topology,
            **spec.scenario_kwargs,
        )
        if topology is None:
            topology = scenario.topology
        balancer = make_balancer(spec.algorithm, **spec.algorithm_kwargs)
        sim_kwargs: dict = {
            "links": scenario.links,
            "dynamic": scenario.dynamic,
            "node_speeds": scenario.node_speeds,
            "seed": spec.seed,
            "recorder": spec.recorder,
            "probe": spec.probe,
            **spec.sim_kwargs,
        }
        sims.append(FastSimulator(
            scenario.topology, scenario.system, balancer, **sim_kwargs
        ))
    return BatchSimulator(sims).run(max_rounds=first.max_rounds)


def execute_payload(spec_dict: dict) -> dict:
    """Pool-side wrapper: plain-dict spec in, JSON result payload out."""
    return execute_spec(RunSpec.from_dict(spec_dict)).to_dict()


def execute_batch_payload(item: dict) -> dict:
    """Pool-side wrapper for one batched task: ``{"specs": [...]}`` in,
    ``{"results": [...]}`` out (payloads in spec order)."""
    specs = [RunSpec.from_dict(d) for d in item["specs"]]
    return {"results": [r.to_dict() for r in execute_batch(specs)]}


def execute_task_payload(item: dict) -> dict:
    """Pool entry point for mixed grids: dispatches a plain spec dict to
    :func:`execute_payload` and a ``{"__batch__": True, "specs": [...]}``
    task to :func:`execute_batch_payload`, so one ``map_timed`` pass
    carries both shapes."""
    if item.get("__batch__"):
        return execute_batch_payload(item)
    return execute_payload(item)
