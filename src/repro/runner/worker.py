"""Spec execution: the function that runs inside worker processes.

:func:`execute_spec` is the single place a :class:`RunSpec` becomes a
simulation — the CLI's ``run`` command, the serial fallback and every
pool worker all call it, so serial and parallel runs are the *same
code* on different transports. Determinism contract: the result is a
pure function of the spec's content (scenario construction, balancer
config and the simulator RNG are all seeded from ``spec.seed``), which
is what licenses the content-addressed cache.

``execute_payload`` is the pool entry point: module-level (hence
picklable by reference) and returning the JSON payload rather than the
result object, so the bytes that cross the process boundary are exactly
the bytes that would be written to the cache.
"""

from __future__ import annotations

from repro.runner.registry import make_balancer
from repro.runner.spec import RunSpec
from repro.sim import SimulationResult, Simulator
from repro.workloads import build_scenario


def execute_spec(spec: RunSpec) -> SimulationResult:
    """Run one spec to completion and return its result."""
    scenario = build_scenario(spec.scenario, seed=spec.seed, **spec.scenario_kwargs)
    balancer = make_balancer(spec.algorithm, **spec.algorithm_kwargs)
    sim = Simulator(
        scenario.topology,
        scenario.system,
        balancer,
        links=scenario.links,
        seed=spec.seed,
        **spec.sim_kwargs,
    )
    return sim.run(max_rounds=spec.max_rounds)


def execute_payload(spec_dict: dict) -> dict:
    """Pool-side wrapper: plain-dict spec in, JSON result payload out."""
    return execute_spec(RunSpec.from_dict(spec_dict)).to_dict()
