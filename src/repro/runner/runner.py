"""The grid runner: specs in, (optionally cached, optionally parallel)
results out.

:func:`run_grid` is the orchestrator the tentpole experiments use: it
resolves every spec against the result cache, fans the remaining work
across worker processes via :mod:`repro.runner.pool`, stores fresh
results back, and returns :class:`RunOutcome` objects in spec order.

Determinism: cached, serial and parallel paths all normalise results
through the same JSON payload (:meth:`SimulationResult.to_dict` →
``from_dict``), so for identical specs the three paths return
*identical* results — the only field that varies between executions is
the measured ``wall_time_s`` inside a freshly-run result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from os import PathLike
from typing import Callable, Optional, Sequence

from repro.runner.cache import ResultCache
from repro.runner.pool import map_tasks
from repro.runner.spec import RunSpec
from repro.runner.worker import execute_payload
from repro.sim import SimulationResult

#: progress callback signature: (outcome, completed count, total count)
ProgressFn = Callable[["RunOutcome", int, int], None]


@dataclass
class RunOutcome:
    """One executed (or replayed) spec.

    Attributes
    ----------
    spec, key:
        The spec and its content hash (the cache address).
    result:
        The simulation result, rebuilt from the canonical JSON payload.
    cached:
        True when the result was replayed from the cache.
    duration_s:
        Wall-clock seconds from the start of the execution pass until
        this result landed (0 for cache hits). The simulation's own
        loop time is ``result.wall_time_s``.
    """

    spec: RunSpec
    key: str
    result: SimulationResult
    cached: bool
    duration_s: float = 0.0

    def row(self) -> dict[str, object]:
        """Flat summary row: spec coordinates + result summary.

        ``algorithm`` is the spec's registry key (what the user asked
        for — distinguishes e.g. ``pplb`` from ``pplb-greedy``); the
        balancer's self-reported display name is kept as ``balancer``.
        """
        row: dict[str, object] = {
            "scenario": self.spec.scenario,
            "seed": self.spec.seed,
        }
        row.update(self.result.summary_row())
        row["balancer"] = row["algorithm"]
        row["algorithm"] = self.spec.algorithm
        row["cached"] = self.cached
        return row


def run_grid(
    specs: Sequence[RunSpec],
    workers: int = 1,
    cache: ResultCache | str | PathLike | None = None,
    progress: Optional[ProgressFn] = None,
) -> list[RunOutcome]:
    """Execute every spec, replaying cached results and fanning out the rest.

    Parameters
    ----------
    specs:
        The grid (e.g. from :func:`~repro.runner.spec.expand_grid`).
    workers:
        ``1`` (the default) is serial — bit-identical to running each
        spec by hand; ``N > 1`` uses that many worker processes;
        ``0`` one per core.
    cache:
        A :class:`ResultCache`, a directory path for one, or None to
        disable caching.
    progress:
        Optional callback fired once per completed spec with
        ``(outcome, completed, total)``; cache hits fire first.

    Returns
    -------
    list[RunOutcome]
        One outcome per spec, in input order.
    """
    specs = list(specs)
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)

    outcomes: dict[int, RunOutcome] = {}
    total = len(specs)
    done = 0

    def emit(outcome: RunOutcome) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(outcome, done, total)

    # Pass 1: resolve cache hits (and pre-compute keys exactly once).
    pending: list[int] = []
    keys = [spec.key() for spec in specs]
    for i, spec in enumerate(specs):
        payload = cache.get(keys[i]) if cache is not None else None
        if payload is not None:
            outcome = RunOutcome(
                spec=spec,
                key=keys[i],
                result=SimulationResult.from_dict(payload),
                cached=True,
            )
            outcomes[i] = outcome
            emit(outcome)
        else:
            pending.append(i)

    # Pass 2: execute the misses (serial or across worker processes).
    if pending:
        started = time.perf_counter()

        def collect(rank: int, payload: dict) -> None:
            i = pending[rank]
            outcome = RunOutcome(
                spec=specs[i],
                key=keys[i],
                result=SimulationResult.from_dict(payload),
                cached=False,
                duration_s=time.perf_counter() - started,
            )
            if cache is not None:
                cache.put(keys[i], specs[i].to_dict(), payload)
            outcomes[i] = outcome
            emit(outcome)

        map_tasks(
            execute_payload,
            [specs[i].to_dict() for i in pending],
            workers=workers,
            on_result=collect,
        )

    return [outcomes[i] for i in range(total)]
