"""The grid runner: specs in, (optionally cached, optionally parallel)
results out.

:func:`run_grid` is the orchestrator the tentpole experiments use: it
resolves every spec against the result cache, fans the remaining work
across an :class:`~repro.runner.backends.ExecutionBackend` (serial
in-process loop, or the persistent chunked worker pool), stores fresh
results back, and returns :class:`RunOutcome` objects in spec order.

Determinism: cached, serial and parallel paths all normalise results
through the same JSON payload (:meth:`SimulationResult.to_dict` →
``from_dict``), so for identical specs the three paths return
*identical* results — the only field that varies between executions is
the measured ``wall_time_s`` inside a freshly-run result.

Two scaling levers ride on top of the backend seam:

* ``sink=`` streams finished specs into a
  :class:`~repro.runner.sink.ColumnarResultLog` as they land —
  columnar in memory, optionally JSONL on disk — so a huge sweep's
  consumers read columns instead of holding every result object.
* ``keep_results=False`` turns cached replays into *metric-level*
  reads: hits are answered from the cache's index sidecar (seven
  scalars per spec, no payload parse, no result rebuild) and the
  outcomes carry ``metrics`` instead of ``result``. This is the
  fully-cached-grid fast path ``bench_perf.py`` tracks as
  ``grid_dispatch_rps``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from os import PathLike
from typing import Callable, Optional, Sequence

from repro.runner.backends import ExecutionBackend, resolve_backend
from repro.runner.cache import ResultCache
from repro.runner.sink import ColumnarResultLog, default_metrics
from repro.runner.spec import RunSpec
from repro.runner.worker import execute_batch_payload, execute_payload
from repro.sim import SimulationResult

#: progress callback signature: (outcome, completed count, total count)
ProgressFn = Callable[["RunOutcome", int, int], None]


def _execute_task(item: dict) -> dict:
    """Dispatch one backend task: a plain spec dict or a batch bundle.

    Module-level (picklable for the pool backend) and resolved through
    this module's globals, so tests that monkeypatch
    ``runner.execute_payload`` keep intercepting serial execution.
    """
    if item.get("__batch__"):
        return execute_batch_payload(item)
    return execute_payload(item)


@dataclass
class RunnerMetrics:
    """Execution-side telemetry for one :func:`run_grid` call.

    Filled in place when passed as ``run_grid(..., metrics=...)``; the
    simulation results are unaffected (this measures the *runner*, the
    probes inside :mod:`repro.sim.telemetry` measure the simulation).

    Attributes
    ----------
    workers:
        Resolved worker count used for the execution pass.
    backend:
        Name of the execution backend the pass ran on.
    workers_spawned:
        Worker processes actually *created* during this call — 0 when
        a persistent pool served the pass with already-warm workers
        (the reuse the tuning loop is built on).
    total, cache_hits, cache_misses:
        Grid size and how it split between replayed and executed specs.
    wall_s:
        Wall-clock seconds of the execution pass (0 when every spec was
        a cache hit).
    task_s:
        Summed in-worker seconds across executed specs — the work
        itself, excluding pool queueing and transport.
    queue_wait_s:
        Summed seconds executed specs spent between the start of the
        execution pass and the start of their own work (queueing behind
        other specs plus pool overhead).
    spec_rows:
        One dict per spec, in spec order: ``label``, ``cached`` and
        (for executed specs) ``task_s``.
    """

    workers: int = 1
    backend: str = "serial"
    workers_spawned: int = 0
    total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0
    task_s: float = 0.0
    queue_wait_s: float = 0.0
    spec_rows: list[dict] = field(default_factory=list)

    def utilization(self) -> float:
        """Fraction of worker capacity spent executing (0 when idle).

        ``task_s / (wall_s * workers)`` — 1.0 means every worker was
        busy for the whole execution pass; low values under
        ``workers > 1`` mean the grid was too small or too skewed to
        keep the pool fed.
        """
        denom = self.wall_s * max(self.workers, 1)
        return self.task_s / denom if denom > 0 else 0.0

    def mean_queue_wait_s(self) -> float:
        """Mean per-executed-spec queue wait (0 when all specs hit)."""
        return self.queue_wait_s / self.cache_misses if self.cache_misses else 0.0

    def summary(self) -> dict[str, object]:
        """Flat aggregate dict (one ``format_table`` row)."""
        return {
            "specs": self.total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "workers": self.workers,
            "wall_s": round(self.wall_s, 6),
            "task_s": round(self.task_s, 6),
            "utilization": round(self.utilization(), 4),
            "mean_queue_wait_s": round(self.mean_queue_wait_s(), 6),
        }


@dataclass
class RunOutcome:
    """One executed (or replayed) spec.

    Attributes
    ----------
    spec, key:
        The spec and its content hash (the cache address).
    result:
        The simulation result, rebuilt from the canonical JSON payload.
        ``None`` under ``run_grid(..., keep_results=False)``, where
        cached replays are answered at metric level — use ``metrics``.
    cached:
        True when the result was replayed from the cache.
    duration_s:
        Wall-clock seconds from the start of the execution pass until
        this result landed (0 for cache hits). The simulation's own
        loop time is ``result.wall_time_s``.
    task_s:
        In-worker seconds this spec's execution took (0 for cache
        hits) — per-spec wall time, excluding pool queueing.
    metrics:
        The spec's :func:`~repro.runner.sink.default_metrics` scalars.
        Always present for slim (``keep_results=False``) outcomes and
        for freshly-executed specs; may be ``None`` on plain cached
        replays (derive from ``result`` instead).
    """

    spec: RunSpec
    key: str
    result: SimulationResult | None
    cached: bool
    duration_s: float = 0.0
    task_s: float = 0.0
    metrics: dict | None = None

    def row(self) -> dict[str, object]:
        """Flat summary row: spec coordinates + result summary.

        ``algorithm`` is the spec's registry key (what the user asked
        for — distinguishes e.g. ``pplb`` from ``pplb-greedy``); the
        balancer's self-reported display name is kept as ``balancer``.
        """
        if self.result is None:
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(
                "cannot build a summary row from a metric-level outcome "
                "(run_grid(..., keep_results=False)); re-run with "
                "keep_results=True or read outcome.metrics"
            )
        row: dict[str, object] = {
            "scenario": self.spec.scenario,
            "seed": self.spec.seed,
        }
        row.update(self.result.summary_row())
        row["balancer"] = row["algorithm"]
        row["algorithm"] = self.spec.algorithm
        row["cached"] = self.cached
        return row


def _replicate_tasks(
    specs: Sequence[RunSpec],
    pending: Sequence[int],
    batch_replicates: int | None,
) -> list[list[int]]:
    """Partition pending spec indices into execution tasks.

    Specs that are identical up to ``seed`` — same canonical dict minus
    the seed field — and eligible for replicate batching (rounds-fast
    engine, null probe, and either ``batch_replicates > 1`` or a
    spec-level ``rounds-batch`` request) are grouped into one batched
    task of at most ``batch_replicates`` replicates (unbounded for
    spec-level requests without a grid-level cap). Everything else
    stays a singleton task. Group membership follows pending order, so
    tasks — and therefore batches — are deterministic for a given grid.
    """
    cap = batch_replicates if batch_replicates and batch_replicates > 1 else None
    tasks: list[list[int]] = []
    open_group: dict[str, list[int]] = {}
    for i in pending:
        spec = specs[i]
        wanted = cap is not None or getattr(spec, "batch_requested", False)
        if not (wanted and spec.engine == "rounds-fast"
                and spec.probe == "null"):
            tasks.append([i])
            continue
        d = spec.to_dict()
        del d["seed"]
        key = json.dumps(d, sort_keys=True, separators=(",", ":"))
        group = open_group.get(key)
        if group is None:
            group = []
            open_group[key] = group
            tasks.append(group)
        group.append(i)
        if cap is not None and len(group) >= cap:
            del open_group[key]
    return tasks


def run_grid(
    specs: Sequence[RunSpec],
    workers: int = 1,
    cache: ResultCache | str | PathLike | None = None,
    progress: Optional[ProgressFn] = None,
    metrics: RunnerMetrics | None = None,
    backend: ExecutionBackend | str | None = None,
    sink: ColumnarResultLog | None = None,
    keep_results: bool = True,
    batch_replicates: int | None = None,
) -> list[RunOutcome]:
    """Execute every spec, replaying cached results and fanning out the rest.

    Parameters
    ----------
    specs:
        The grid (e.g. from :func:`~repro.runner.spec.expand_grid`).
    workers:
        ``1`` (the default) is serial — bit-identical to running each
        spec by hand; ``N > 1`` fans out across that many worker
        processes (through the shared persistent pool backend);
        ``0`` one per core. ``PPLB_WORKERS`` in the environment pins
        the resolved width.
    cache:
        A :class:`ResultCache`, a directory path for one, or None to
        disable caching.
    progress:
        Optional callback fired once per completed spec with
        ``(outcome, completed, total)``; cache hits fire first.
    metrics:
        Optional :class:`RunnerMetrics` instance filled in place with
        execution-side telemetry (cache split, per-spec task times,
        worker utilization, queue wait, backend spawns). Collection is
        passive — it never changes which specs run or what they return.
    backend:
        Where execution happens: an
        :class:`~repro.runner.backends.ExecutionBackend` instance, a
        registry name (``"serial"``/``"pool"``), or None for the
        historical behaviour (serial at width 1, the shared persistent
        pool otherwise). Named/default backends are shared and survive
        across calls, so consecutive grids reuse warm workers.
    sink:
        Optional :class:`~repro.runner.sink.ColumnarResultLog`:
        every finished spec is appended (and streamed to the sink's
        JSONL path, if it has one) the moment it lands.
    keep_results:
        ``False`` returns *slim* outcomes: cached specs replay at
        metric level straight from the cache's index sidecar (no
        payload parse, no :class:`SimulationResult` rebuild) and
        ``outcome.result`` is None throughout — ``outcome.metrics``
        carries the :func:`default_metrics` scalars. The metric values
        are bit-identical to the full path (they were computed by the
        same function at store time and round-trip exactly through
        JSON).
    batch_replicates:
        ``N > 1`` groups cache-missing specs that are identical up to
        ``seed`` (rounds-fast engine, null probe) into batched tasks of
        up to N replicates, each executed as one
        :class:`~repro.sim.BatchSimulator` run. Transparent: every
        replicate's result is bit-identical to its solo execution, so
        per-spec outcomes, cache entries, index lines and sink rows are
        exactly what the unbatched path produces — batched and solo
        runs share cache keys and interoperate freely. Specs built with
        ``engine="rounds-batch"`` opt in at spec level even when this
        is None (then a group spans all matching replicates).

    Returns
    -------
    list[RunOutcome]
        One outcome per spec, in input order.
    """
    specs = list(specs)
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    exec_backend = resolve_backend(backend, workers)

    outcomes: dict[int, RunOutcome] = {}
    total = len(specs)
    done = 0
    want_metrics = (not keep_results) or sink is not None

    def emit(i: int, outcome: RunOutcome) -> None:
        nonlocal done
        done += 1
        outcomes[i] = outcome
        if sink is not None and outcome.metrics is not None:
            sink.append(
                index=i,
                spec=outcome.spec,
                key=outcome.key,
                cached=outcome.cached,
                metrics=outcome.metrics,
            )
        if progress is not None:
            progress(outcome, done, total)

    # Pass 1: resolve cache hits (and pre-compute keys exactly once).
    pending: list[int] = []
    keys = [spec.key() for spec in specs]
    for i, spec in enumerate(specs):
        if cache is None:
            pending.append(i)
            continue
        if not keep_results:
            # Metric-level fast path: answer the hit from the index
            # sidecar (seven floats, no payload parse). Entries the
            # index cannot answer fall back to the payload below.
            indexed = cache.metrics_for(keys[i])
            if indexed is not None:
                emit(i, RunOutcome(
                    spec=spec, key=keys[i], result=None, cached=True,
                    metrics=indexed,
                ))
                continue
        payload = cache.get(keys[i])
        if payload is not None:
            result = SimulationResult.from_dict(payload)
            spec_metrics = default_metrics(result) if want_metrics else None
            emit(i, RunOutcome(
                spec=spec,
                key=keys[i],
                result=None if not keep_results else result,
                cached=True,
                metrics=spec_metrics,
            ))
        else:
            pending.append(i)

    # Pass 2: execute the misses through the backend. Seed replicates
    # of one spec family may ride together as one batched task; each
    # replicate still lands as its own outcome/cache entry/sink row,
    # bit-identical to a solo execution.
    spawned_before = int(exec_backend.stats().get("workers_spawned", 0))
    if pending:
        started = time.perf_counter()
        tasks = _replicate_tasks(specs, pending, batch_replicates)

        def collect_one(i: int, payload: dict, task_s: float) -> None:
            result = SimulationResult.from_dict(payload)
            # Metrics are computed for every fresh result: the cache
            # indexes them, so a later keep_results=False replay of
            # this grid never reopens the payloads.
            spec_metrics = default_metrics(result)
            outcome = RunOutcome(
                spec=specs[i],
                key=keys[i],
                result=result if keep_results else None,
                cached=False,
                duration_s=time.perf_counter() - started,
                task_s=task_s,
                metrics=spec_metrics,
            )
            if cache is not None:
                cache.put(keys[i], specs[i].to_dict(), payload,
                          metrics=spec_metrics)
            emit(i, outcome)

        def collect(rank: int, payload: dict, task_s: float) -> None:
            group = tasks[rank]
            if len(group) == 1:
                collect_one(group[0], payload, task_s)
                return
            # One batched task: split its payload back into per-spec
            # results (spec order), sharing the in-worker seconds
            # evenly — the replicates ran as one joint loop.
            share = task_s / len(group)
            for i, result_payload in zip(group, payload["results"]):
                collect_one(i, result_payload, share)

        items: list[dict] = []
        for group in tasks:
            if len(group) == 1:
                items.append(specs[group[0]].to_dict())
            else:
                items.append({
                    "__batch__": True,
                    "specs": [specs[i].to_dict() for i in group],
                })
        exec_backend.map_timed(
            _execute_task,
            items,
            on_result=collect,
        )

    if metrics is not None:
        stats = exec_backend.stats()
        metrics.workers = exec_backend.workers()
        metrics.backend = exec_backend.name
        metrics.workers_spawned = (
            int(stats.get("workers_spawned", 0)) - spawned_before
        )
        metrics.total = total
        metrics.cache_hits = total - len(pending)
        metrics.cache_misses = len(pending)
        for i in range(total):
            outcome = outcomes[i]
            row: dict[str, object] = {
                "label": outcome.spec.label(),
                "cached": outcome.cached,
                "task_s": round(outcome.task_s, 6),
            }
            metrics.spec_rows.append(row)
            if not outcome.cached:
                metrics.task_s += outcome.task_s
                # Landing time minus the task's own work = time spent
                # queued behind other specs plus pool overhead.
                metrics.queue_wait_s += max(
                    outcome.duration_s - outcome.task_s, 0.0
                )
                metrics.wall_s = max(metrics.wall_s, outcome.duration_s)

    return [outcomes[i] for i in range(total)]
