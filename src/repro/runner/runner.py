"""The grid runner: specs in, (optionally cached, optionally parallel)
results out.

:func:`run_grid` is the orchestrator the tentpole experiments use: it
resolves every spec against the result cache, fans the remaining work
across worker processes via :mod:`repro.runner.pool`, stores fresh
results back, and returns :class:`RunOutcome` objects in spec order.

Determinism: cached, serial and parallel paths all normalise results
through the same JSON payload (:meth:`SimulationResult.to_dict` →
``from_dict``), so for identical specs the three paths return
*identical* results — the only field that varies between executions is
the measured ``wall_time_s`` inside a freshly-run result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from os import PathLike
from typing import Callable, Optional, Sequence

from repro.runner.cache import ResultCache
from repro.runner.pool import map_tasks_timed, resolve_workers
from repro.runner.spec import RunSpec
from repro.runner.worker import execute_payload
from repro.sim import SimulationResult

#: progress callback signature: (outcome, completed count, total count)
ProgressFn = Callable[["RunOutcome", int, int], None]


@dataclass
class RunnerMetrics:
    """Execution-side telemetry for one :func:`run_grid` call.

    Filled in place when passed as ``run_grid(..., metrics=...)``; the
    simulation results are unaffected (this measures the *runner*, the
    probes inside :mod:`repro.sim.telemetry` measure the simulation).

    Attributes
    ----------
    workers:
        Resolved worker count used for the execution pass.
    total, cache_hits, cache_misses:
        Grid size and how it split between replayed and executed specs.
    wall_s:
        Wall-clock seconds of the execution pass (0 when every spec was
        a cache hit).
    task_s:
        Summed in-worker seconds across executed specs — the work
        itself, excluding pool queueing and transport.
    queue_wait_s:
        Summed seconds executed specs spent between the start of the
        execution pass and the start of their own work (queueing behind
        other specs plus pool overhead).
    spec_rows:
        One dict per spec, in spec order: ``label``, ``cached`` and
        (for executed specs) ``task_s``.
    """

    workers: int = 1
    total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0
    task_s: float = 0.0
    queue_wait_s: float = 0.0
    spec_rows: list[dict] = field(default_factory=list)

    def utilization(self) -> float:
        """Fraction of worker capacity spent executing (0 when idle).

        ``task_s / (wall_s * workers)`` — 1.0 means every worker was
        busy for the whole execution pass; low values under
        ``workers > 1`` mean the grid was too small or too skewed to
        keep the pool fed.
        """
        denom = self.wall_s * max(self.workers, 1)
        return self.task_s / denom if denom > 0 else 0.0

    def mean_queue_wait_s(self) -> float:
        """Mean per-executed-spec queue wait (0 when all specs hit)."""
        return self.queue_wait_s / self.cache_misses if self.cache_misses else 0.0

    def summary(self) -> dict[str, object]:
        """Flat aggregate dict (one ``format_table`` row)."""
        return {
            "specs": self.total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "workers": self.workers,
            "wall_s": round(self.wall_s, 6),
            "task_s": round(self.task_s, 6),
            "utilization": round(self.utilization(), 4),
            "mean_queue_wait_s": round(self.mean_queue_wait_s(), 6),
        }


@dataclass
class RunOutcome:
    """One executed (or replayed) spec.

    Attributes
    ----------
    spec, key:
        The spec and its content hash (the cache address).
    result:
        The simulation result, rebuilt from the canonical JSON payload.
    cached:
        True when the result was replayed from the cache.
    duration_s:
        Wall-clock seconds from the start of the execution pass until
        this result landed (0 for cache hits). The simulation's own
        loop time is ``result.wall_time_s``.
    task_s:
        In-worker seconds this spec's execution took (0 for cache
        hits) — per-spec wall time, excluding pool queueing.
    """

    spec: RunSpec
    key: str
    result: SimulationResult
    cached: bool
    duration_s: float = 0.0
    task_s: float = 0.0

    def row(self) -> dict[str, object]:
        """Flat summary row: spec coordinates + result summary.

        ``algorithm`` is the spec's registry key (what the user asked
        for — distinguishes e.g. ``pplb`` from ``pplb-greedy``); the
        balancer's self-reported display name is kept as ``balancer``.
        """
        row: dict[str, object] = {
            "scenario": self.spec.scenario,
            "seed": self.spec.seed,
        }
        row.update(self.result.summary_row())
        row["balancer"] = row["algorithm"]
        row["algorithm"] = self.spec.algorithm
        row["cached"] = self.cached
        return row


def run_grid(
    specs: Sequence[RunSpec],
    workers: int = 1,
    cache: ResultCache | str | PathLike | None = None,
    progress: Optional[ProgressFn] = None,
    metrics: RunnerMetrics | None = None,
) -> list[RunOutcome]:
    """Execute every spec, replaying cached results and fanning out the rest.

    Parameters
    ----------
    specs:
        The grid (e.g. from :func:`~repro.runner.spec.expand_grid`).
    workers:
        ``1`` (the default) is serial — bit-identical to running each
        spec by hand; ``N > 1`` uses that many worker processes;
        ``0`` one per core.
    cache:
        A :class:`ResultCache`, a directory path for one, or None to
        disable caching.
    progress:
        Optional callback fired once per completed spec with
        ``(outcome, completed, total)``; cache hits fire first.
    metrics:
        Optional :class:`RunnerMetrics` instance filled in place with
        execution-side telemetry (cache split, per-spec task times,
        worker utilization, queue wait). Collection is passive — it
        never changes which specs run or what they return.

    Returns
    -------
    list[RunOutcome]
        One outcome per spec, in input order.
    """
    specs = list(specs)
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)

    outcomes: dict[int, RunOutcome] = {}
    total = len(specs)
    done = 0

    def emit(outcome: RunOutcome) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(outcome, done, total)

    # Pass 1: resolve cache hits (and pre-compute keys exactly once).
    pending: list[int] = []
    keys = [spec.key() for spec in specs]
    for i, spec in enumerate(specs):
        payload = cache.get(keys[i]) if cache is not None else None
        if payload is not None:
            outcome = RunOutcome(
                spec=spec,
                key=keys[i],
                result=SimulationResult.from_dict(payload),
                cached=True,
            )
            outcomes[i] = outcome
            emit(outcome)
        else:
            pending.append(i)

    # Pass 2: execute the misses (serial or across worker processes).
    if pending:
        started = time.perf_counter()

        def collect(rank: int, payload: dict, task_s: float) -> None:
            i = pending[rank]
            outcome = RunOutcome(
                spec=specs[i],
                key=keys[i],
                result=SimulationResult.from_dict(payload),
                cached=False,
                duration_s=time.perf_counter() - started,
                task_s=task_s,
            )
            if cache is not None:
                cache.put(keys[i], specs[i].to_dict(), payload)
            outcomes[i] = outcome
            emit(outcome)

        map_tasks_timed(
            execute_payload,
            [specs[i].to_dict() for i in pending],
            workers=workers,
            on_result=collect,
        )

    if metrics is not None:
        metrics.workers = resolve_workers(workers)
        metrics.total = total
        metrics.cache_hits = total - len(pending)
        metrics.cache_misses = len(pending)
        for i in range(total):
            outcome = outcomes[i]
            row: dict[str, object] = {
                "label": outcome.spec.label(),
                "cached": outcome.cached,
                "task_s": round(outcome.task_s, 6),
            }
            metrics.spec_rows.append(row)
            if not outcome.cached:
                metrics.task_s += outcome.task_s
                # Landing time minus the task's own work = time spent
                # queued behind other specs plus pool overhead.
                metrics.queue_wait_s += max(
                    outcome.duration_s - outcome.task_s, 0.0
                )
                metrics.wall_s = max(metrics.wall_s, outcome.duration_s)

    return [outcomes[i] for i in range(total)]
