"""Named balancer factories shared by the CLI and the parallel runner.

A :class:`~repro.runner.spec.RunSpec` travels to worker processes as
plain data (strings + numbers), so balancers are constructed *by name*
on the worker side. This module is the single registry mapping those
names to constructors; ``repro.cli`` reuses it for its ``--algorithm``
choices, so the CLI and the runner can never disagree about what an
algorithm name means.

Factory conventions: every factory accepts keyword overrides layered on
top of its registered defaults, e.g. ``make_balancer("pplb",
mu_k_base=0.5)`` builds a :class:`~repro.core.ParticlePlaneBalancer`
whose config differs from the paper defaults only in µk.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines import (
    ContractingWithinNeighborhood,
    DimensionExchange,
    FluidDiffusion,
    FluidDimensionExchange,
    GradientModel,
    NoBalancer,
    RandomWorkStealing,
    SecondOrderDiffusion,
    SenderInitiated,
    TaskDiffusion,
)
from repro.core import ParticlePlaneBalancer, PPLBConfig
from repro.exceptions import ConfigurationError
from repro.interfaces import Balancer


def _pplb(**kw) -> Balancer:
    return ParticlePlaneBalancer(PPLBConfig(**kw))


def _pplb_greedy(**kw) -> Balancer:
    return ParticlePlaneBalancer(PPLBConfig(**{"beta0": 0.0, **kw}))


def _diffusion(**kw) -> Balancer:
    return TaskDiffusion(**{"policy": "uniform", **kw})


def _dimension_exchange(**kw) -> Balancer:
    return DimensionExchange(**{"min_quota": 0.5, **kw})


#: algorithm name -> factory accepting keyword overrides
FACTORIES: dict[str, Callable[..., Balancer]] = {
    "pplb": _pplb,
    "pplb-greedy": _pplb_greedy,
    "diffusion": _diffusion,
    "dimension-exchange": _dimension_exchange,
    "gradient-model": GradientModel,
    "cwn": ContractingWithinNeighborhood,
    "work-stealing": RandomWorkStealing,
    "sender-initiated": SenderInitiated,
    "none": NoBalancer,
}

#: divisible-load algorithm name -> factory. These run only under the
#: ``fluid`` engine (they prescribe per-edge flows on the load vector
#: instead of per-task migrations); :class:`~repro.runner.spec.RunSpec`
#: enforces the pairing in both directions.
FLUID_FACTORIES: dict[str, Callable[..., object]] = {
    "fluid-diffusion": FluidDiffusion,
    "fluid-dimension-exchange": FluidDimensionExchange,
    "fluid-sos": SecondOrderDiffusion,
}


def make_balancer(name: str, **overrides):
    """Construct the registered balancer *name* with keyword *overrides*.

    Looks in :data:`FACTORIES` first, then :data:`FLUID_FACTORIES`
    (names are unique across the two registries).
    """
    factory = FACTORIES.get(name) or FLUID_FACTORIES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: "
            f"{sorted(FACTORIES)} (task) + {sorted(FLUID_FACTORIES)} (fluid)"
        )
    return factory(**overrides)
