"""Streaming columnar result collection for grid runs.

A million-spec sweep cannot afford one rebuilt
:class:`~repro.sim.SimulationResult` (plus its JSON payload) per spec
held in memory. :class:`ColumnarResultLog` is the incremental sink
:func:`~repro.runner.runner.run_grid` appends finished specs to as
they land: one preallocated, growable NumPy array per metric field —
the same amortised-O(1) pattern as the kernel's
:class:`~repro.sim.results.RoundLog` — plus an optional on-disk
JSONL stream (one line per landed spec, flushed immediately, so a
monitoring tail sees results the moment they finish and a killed sweep
keeps everything already landed).

The metric schema is :func:`default_metrics` — the same seven scalars
the analysis layer aggregates — which lives here (re-exported by
:mod:`repro.runner.merge` for compatibility) so the sink, the cache
index and the merge layer agree on one definition without import
cycles.

Rows land in completion order (parallel backends complete out of
order); every read surface (:meth:`rows`, :meth:`column`) sorts by the
original spec index, so consumers always see grid order.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import IO, Mapping

import numpy as np

from repro.exceptions import ConfigurationError
from repro.sim import SimulationResult

#: the sink's metric schema, in column order (all finite floats).
METRIC_FIELDS = (
    "final_cov",
    "final_spread",
    "migrations",
    "traffic",
    "heat",
    "rounds",
    "converged",
)

_MIN_CAPACITY = 64


def default_metrics(result: SimulationResult) -> dict[str, float]:
    """Standard scalar metrics of one run (all finite floats).

    ``converged_round`` is None for non-converged runs, so the
    aggregate exposes ``converged`` (0/1 rate) and ``rounds`` (rounds
    actually simulated) instead. All values come off the result's
    summary surface (columnar totals, or streamed aggregates for
    thin/summary-recorded runs), so any recorder merges cleanly.
    """
    return {
        "final_cov": float(result.final_cov),
        "final_spread": float(result.final_spread),
        "migrations": float(result.total_migrations),
        "traffic": float(result.total_traffic),
        "heat": float(result.total_heat),
        "rounds": float(result.n_rounds),
        "converged": float(result.converged),
    }


class ColumnarResultLog:
    """Growable columnar store of per-spec grid results.

    Parameters
    ----------
    path:
        Optional JSONL stream: every :meth:`append` also writes (and
        flushes) one line, so results are durable the moment they land.
        :meth:`load` reads such a stream back.
    capacity:
        Initial column capacity (grows geometrically either way).
    """

    __slots__ = (
        "_metrics", "_index", "_seed", "_cached",
        "_keys", "_scenarios", "_algorithms", "_engines", "_recorders",
        "_n", "_capacity", "path", "_fh",
    )

    def __init__(self, path: str | os.PathLike | None = None, capacity: int = 0):
        self._n = 0
        self._capacity = int(capacity)
        self._metrics = {
            name: np.empty(self._capacity, dtype=np.float64)
            for name in METRIC_FIELDS
        }
        self._index = np.empty(self._capacity, dtype=np.int64)
        self._seed = np.empty(self._capacity, dtype=np.int64)
        self._cached = np.empty(self._capacity, dtype=np.int64)
        self._keys: list[str] = []
        self._scenarios: list[str] = []
        self._algorithms: list[str] = []
        self._engines: list[str] = []
        self._recorders: list[str] = []
        self.path = pathlib.Path(path) if path is not None else None
        self._fh: IO[str] | None = None

    # ----------------------------- write ----------------------------- #

    def _grow(self, needed: int) -> None:
        new_cap = max(_MIN_CAPACITY, self._capacity * 2, needed)
        for name in METRIC_FIELDS:
            bigger = np.empty(new_cap, dtype=np.float64)
            bigger[: self._n] = self._metrics[name][: self._n]
            self._metrics[name] = bigger
        for attr in ("_index", "_seed", "_cached"):
            bigger = np.empty(new_cap, dtype=np.int64)
            bigger[: self._n] = getattr(self, attr)[: self._n]
            setattr(self, attr, bigger)
        self._capacity = new_cap

    def append(
        self,
        index: int,
        spec,
        key: str,
        cached: bool,
        metrics: Mapping[str, float],
    ) -> None:
        """Land one finished spec (called in completion order).

        *spec* is a :class:`~repro.runner.spec.RunSpec`; *metrics* a
        :func:`default_metrics`-shaped mapping (missing fields raise).
        """
        missing = [name for name in METRIC_FIELDS if name not in metrics]
        if missing:
            raise ConfigurationError(
                f"sink metrics missing fields {missing} for spec index {index}"
            )
        if self._n == self._capacity:
            self._grow(self._n + 1)
        slot = self._n
        for name in METRIC_FIELDS:
            self._metrics[name][slot] = float(metrics[name])
        self._index[slot] = int(index)
        self._seed[slot] = int(spec.seed)
        self._cached[slot] = int(bool(cached))
        self._keys.append(key)
        self._scenarios.append(spec.scenario)
        self._algorithms.append(spec.algorithm)
        self._engines.append(spec.engine)
        self._recorders.append(spec.recorder)
        self._n += 1
        if self.path is not None:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = open(self.path, "a", encoding="utf-8")
            line = {
                "index": int(index),
                "key": key,
                "scenario": spec.scenario,
                "algorithm": spec.algorithm,
                "seed": int(spec.seed),
                "engine": spec.engine,
                "recorder": spec.recorder,
                "cached": bool(cached),
                "metrics": {k: float(metrics[k]) for k in METRIC_FIELDS},
            }
            self._fh.write(json.dumps(line, sort_keys=True) + "\n")
            self._fh.flush()

    def close(self) -> None:
        """Close the JSONL stream (idempotent; in-memory data stays)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ColumnarResultLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------ read ------------------------------ #

    def __len__(self) -> int:
        return self._n

    def _order(self) -> np.ndarray:
        """Landing-order → spec-order permutation (stable)."""
        return np.argsort(self._index[: self._n], kind="stable")

    def column(self, name: str) -> np.ndarray:
        """One metric column in spec order (a copy; safe to mutate)."""
        if name not in self._metrics:
            raise ConfigurationError(
                f"unknown sink column {name!r}; available: {list(METRIC_FIELDS)}"
            )
        return self._metrics[name][: self._n][self._order()]

    def rows(self) -> list[dict[str, object]]:
        """One flat dict per landed spec, in spec (grid) order."""
        order = self._order()
        out = []
        for slot in order:
            slot = int(slot)
            row: dict[str, object] = {
                "index": int(self._index[slot]),
                "scenario": self._scenarios[slot],
                "algorithm": self._algorithms[slot],
                "seed": int(self._seed[slot]),
                "engine": self._engines[slot],
                "recorder": self._recorders[slot],
                "key": self._keys[slot],
                "cached": bool(self._cached[slot]),
            }
            for name in METRIC_FIELDS:
                row[name] = float(self._metrics[name][slot])
            out.append(row)
        return out

    @classmethod
    def load(cls, path: str | os.PathLike) -> "ColumnarResultLog":
        """Rebuild a log from a JSONL stream written by :meth:`append`.

        Tolerates a torn trailing line (a killed run's partial write):
        malformed lines are skipped, everything whole is kept.
        """
        from repro.runner.spec import RunSpec  # lazy: avoids module cycle

        log = cls()
        source = pathlib.Path(path)
        with open(source, "r", encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    line = json.loads(raw)
                    spec = RunSpec(
                        scenario=line["scenario"],
                        algorithm=line["algorithm"],
                        seed=int(line["seed"]),
                        engine=line["engine"],
                        recorder=line["recorder"],
                    )
                    log.append(
                        index=int(line["index"]),
                        spec=spec,
                        key=str(line["key"]),
                        cached=bool(line["cached"]),
                        metrics=line["metrics"],
                    )
                except (KeyError, TypeError, ValueError, ConfigurationError):
                    continue  # torn or foreign line — keep the rest
        return log
