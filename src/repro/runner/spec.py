"""Run specifications: the unit of work the parallel runner schedules.

A :class:`RunSpec` is plain data — scenario name (registered or a
composed component string), algorithm name, seed and keyword overrides
— so it can cross process boundaries, be hashed for the result cache,
and be rebuilt from JSON. Two specs with the same content produce the
same :meth:`RunSpec.key`, and executing a spec is a pure function of
its content (see :mod:`repro.runner.worker`), which is what makes
cached results safe to replay.

Scenario identity is *canonicalised* at construction: registered names
stay verbatim (pre-composition cache keys are unchanged, so old caches
keep replaying) while composed strings normalise to their canonical
grammar form, so every equivalent spelling of one setting shares one
cache entry.

:func:`expand_grid` builds the (scenario × algorithm × seed) cartesian
product in deterministic order; :func:`expand_component_grid` does the
same over *component axes* (topology × placement × links × … —
the workload cross product as data); :func:`grid_seeds` mints the per-
repetition seeds with the same :func:`repro.rng.seed_for` discipline the
sweep harness uses.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.exceptions import ConfigurationError
from repro.rng import seed_for

#: execution models a spec may request (see :mod:`repro.runner.worker`).
#: ``rounds-batch`` is an *alias*, not a distinct model: it requests the
#: ``rounds-fast`` protocol with replicate batching in the runner, and
#: canonicalises to ``rounds-fast`` at construction so the cache key —
#: and therefore every cached result — is shared with plain
#: ``rounds-fast`` runs (the batched engine is bit-identical per seed).
ENGINES = frozenset(
    {"rounds", "rounds-fast", "events", "events-fast", "fluid", "rounds-batch"}
)


@dataclass
class RunSpec:
    """One simulation to run: everything needed to reproduce it exactly.

    Attributes
    ----------
    scenario:
        A registered name in :data:`repro.workloads.SCENARIOS` or a
        composed component string
        (``"mesh:16x16+hotspot+stragglers:frac=0.1"`` — see
        :mod:`repro.workloads.composition`). Canonicalised at
        construction: registered names verbatim, composed strings to
        their canonical grammar form.
    algorithm:
        Name in :data:`repro.runner.registry.FACTORIES` (task
        balancers) or, for ``engine="fluid"``,
        :data:`repro.runner.registry.FLUID_FACTORIES`.
    seed:
        Seed for both scenario construction and the simulator RNG
        (mirrors ``pplb run``'s single ``--seed``).
    max_rounds:
        Round budget handed to :meth:`Simulator.run`.
    scenario_kwargs:
        Size overrides forwarded to ``build_scenario`` (e.g. ``side``,
        ``n_tasks``).
    algorithm_kwargs:
        Config overrides forwarded to the balancer factory.
    sim_kwargs:
        Engine overrides forwarded to the simulator (e.g.
        ``transfer_latency``, ``link_capacity``; event-engine runs also
        accept ``cadence``, ``wake_jitter``, ``stragglers``, …).
    engine:
        Which execution model runs the spec: ``"rounds"`` (the
        synchronous :class:`~repro.sim.Simulator`, the default),
        ``"rounds-fast"`` (the same protocol through
        :class:`~repro.sim.FastSimulator`'s vectorised large-N path —
        identical records, so large grids should prefer it),
        ``"events"`` (the asynchronous
        :class:`~repro.sim.EventSimulator`), ``"events-fast"`` (the
        same asynchronous protocol through
        :class:`~repro.sim.EventFastSimulator`'s batched wake waves
        and columnar event buffers — identical records),
        ``"rounds-batch"`` (an alias for ``"rounds-fast"`` that
        additionally asks the runner to group seed replicates into one
        :class:`~repro.sim.BatchSimulator` run; canonicalised to
        ``"rounds-fast"`` at construction — same canonical JSON, same
        cache key — with the request kept as the non-serialised
        ``batch_requested`` flag) or ``"fluid"`` (the
        divisible-load :class:`~repro.sim.FluidSimulator`; requires a
        fluid algorithm). The fluid engine is a *projection*: it
        simulates the scenario's initial per-node load surface in the
        continuous limit — task-granular extras (node speeds, churn,
        fault realisation) have no divisible-load counterpart and do
        not apply, so e.g. ``straggler`` under ``fluid`` is exactly
        the ``torus-hotspot`` surface. Part of the content hash, so
        engines never share cache entries.
    recorder:
        Recording policy for the run: ``"full"`` (every round, the
        default), ``"thin:<k>"`` or ``"summary"`` — see
        :mod:`repro.sim.recording`. Part of the content hash (a
        thinned result must never be replayed as a full one); the
        default is *omitted* from the canonical encoding so existing
        full-recording cache entries keep their keys.
    probe:
        Telemetry policy for the run: ``"null"`` (the default — off),
        ``"counters"`` or ``"trace[:path]"`` — see
        :mod:`repro.sim.telemetry`. Part of the content hash when
        enabled (a probed result carries a telemetry block a probe-less
        consumer did not ask for); the ``"null"`` default is *omitted*
        from the canonical encoding — the null probe provably changes
        nothing, so every existing cache key is unchanged.
    """

    scenario: str
    algorithm: str
    seed: int = 0
    max_rounds: int = 500
    scenario_kwargs: dict = field(default_factory=dict)
    algorithm_kwargs: dict = field(default_factory=dict)
    sim_kwargs: dict = field(default_factory=dict)
    engine: str = "rounds"
    recorder: str = "full"
    probe: str = "null"

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; available: {sorted(ENGINES)}"
            )
        # "rounds-batch" asks the *runner* to group seed replicates into
        # one batched simulation; per replicate the records are
        # bit-identical to rounds-fast, so the spec canonicalises to
        # rounds-fast — identical canonical JSON, identical cache key,
        # and batched/solo caches interoperate. The request survives as
        # a non-serialised flag the runner's grouping pass reads.
        self.batch_requested = self.engine == "rounds-batch"
        if self.batch_requested:
            self.engine = "rounds-fast"
        # Canonicalise the recorder spec (e.g. "thin:05" -> "thin:5") so
        # equivalent specs share one cache key; raises on unknown specs.
        from repro.sim.recording import recorder_tag
        from repro.sim.telemetry import probe_tag

        self.recorder = recorder_tag(self.recorder)
        self.probe = probe_tag(self.probe)
        # Validate names eagerly so a bad grid fails before any worker
        # spins up. Imported here to keep this module import-light for
        # worker processes.
        from repro.runner.registry import FACTORIES, FLUID_FACTORIES
        from repro.workloads.composition import canonical_scenario_name

        # Canonicalise the scenario identity and validate the kwargs in
        # one parse: registered names stay verbatim (their historical
        # cache keys must keep replaying), composed strings normalise
        # so equivalent spellings share one cache entry, and bad
        # overrides (typos, misrouted or out-of-range values) fail here
        # — before any worker spins up — with the accepted keys listed.
        # The per-name regimes (strict vs the legacy shared-kwargs
        # shim) live in repro.workloads.composition.
        self.scenario = canonical_scenario_name(
            self.scenario, self.scenario_kwargs
        )
        if self.engine == "fluid":
            if self.algorithm not in FLUID_FACTORIES:
                raise ConfigurationError(
                    f"the fluid engine needs a divisible-load algorithm, "
                    f"got {self.algorithm!r}; available: {sorted(FLUID_FACTORIES)}"
                )
        elif self.algorithm in FLUID_FACTORIES:
            raise ConfigurationError(
                f"algorithm {self.algorithm!r} is a fluid (divisible-load) "
                f"balancer; run it with engine='fluid'"
            )
        elif self.algorithm not in FACTORIES:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; available: {sorted(FACTORIES)}"
            )
        # Content-hash memo (version, digest): specs are treated as
        # immutable once constructed — mutate a copy, never an instance
        # a key() has been taken from.
        self._key_memo: tuple[str, str] | None = None

    # --------------------------- identity ---------------------------- #

    def to_dict(self) -> dict[str, object]:
        """Plain-data form (JSON-ready, inverts via :meth:`from_dict`).

        The default recorder (``"full"``) is omitted rather than
        encoded: the canonical JSON — and therefore the cache key — of
        every pre-recorder spec is unchanged, so caches populated
        before the recorder knob existed keep replaying.
        """
        payload = {
            "scenario": self.scenario,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "max_rounds": self.max_rounds,
            "scenario_kwargs": dict(self.scenario_kwargs),
            "algorithm_kwargs": dict(self.algorithm_kwargs),
            "sim_kwargs": dict(self.sim_kwargs),
            "engine": self.engine,
        }
        if self.recorder != "full":
            payload["recorder"] = self.recorder
        if self.probe != "null":
            payload["probe"] = self.probe
        return payload

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSpec":
        """Rebuild a spec exported with :meth:`to_dict`."""
        return cls(
            scenario=data["scenario"],
            algorithm=data["algorithm"],
            seed=int(data["seed"]),
            max_rounds=int(data["max_rounds"]),
            scenario_kwargs=dict(data.get("scenario_kwargs", {})),
            algorithm_kwargs=dict(data.get("algorithm_kwargs", {})),
            sim_kwargs=dict(data.get("sim_kwargs", {})),
            engine=str(data.get("engine", "rounds")),
            recorder=str(data.get("recorder", "full")),
            probe=str(data.get("probe", "null")),
        )

    def canonical_json(self) -> str:
        """Canonical encoding: sorted keys, no whitespace."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def key(self) -> str:
        """Content hash (sha256 hex) — the result-cache address.

        The hash covers the spec content *and* the library version, so
        cached results are invalidated when the code that produced them
        changes (bump ``repro.__version__`` when altering simulation
        behaviour).

        Memoised per instance (keyed on the library version, so a
        version bump mid-process still re-hashes): a fully-cached grid
        replay asks for every key on every pass, and the canonical-JSON
        encode + sha256 dominates that loop for metadata-only reads.
        Specs are treated as immutable once constructed.
        """
        from repro import __version__

        memo = self._key_memo
        if memo is not None and memo[0] == __version__:
            return memo[1]
        tagged = f"repro-{__version__}:{self.canonical_json()}"
        digest = hashlib.sha256(tagged.encode("utf-8")).hexdigest()
        self._key_memo = (__version__, digest)
        return digest

    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        tag = f"{self.scenario} × {self.algorithm} seed={self.seed}"
        if self.engine != "rounds":
            tag += f" [{self.engine}]"
        if self.recorder != "full":
            tag += f" [{self.recorder}]"
        if self.probe != "null":
            tag += f" [{self.probe}]"
        return tag


def grid_seeds(n: int, base_seed: int = 0) -> list[int]:
    """*n* deterministic seeds derived from *base_seed*.

    Seed *i* is ``seed_for(base_seed, i)``, so extending a grid by more
    repetitions never changes the seeds of existing ones.
    """
    if n < 1:
        raise ConfigurationError(f"need at least one seed, got n={n}")
    return [seed_for(base_seed, i) for i in range(n)]


def expand_grid(
    scenarios: Sequence[str],
    algorithms: Sequence[str],
    seeds: Sequence[int],
    max_rounds: int = 500,
    scenario_kwargs: Mapping | None = None,
    algorithm_kwargs: Mapping | None = None,
    sim_kwargs: Mapping | None = None,
    engine: str = "rounds",
    recorder: str = "full",
    probe: str = "null",
    order: str = "scenario-major",
) -> list[RunSpec]:
    """Cartesian (scenario × algorithm × seed) product.

    The order is deterministic so serial and parallel executions of the
    same grid agree on spec indices. ``order`` selects which axis is
    the major (slowest-varying, outermost) one:

    * ``"scenario-major"`` (the default, the historical order):
      scenarios, then algorithms, then seeds — all replicates of one
      (scenario, algorithm) cell are adjacent, which is the layout
      replicate batching (``run_grid(..., batch_replicates=...)``)
      groups most naturally (grouping is key-based, so any order is
      *correct* — adjacency just keeps batches and progress output
      aligned with the caller's reading order).
    * ``"seed-major"``: seeds, then scenarios, then algorithms — one
      complete replicate of the whole grid lands before the next seed
      starts, so partial executions yield full (scenario × algorithm)
      coverage early.

    Either way the outcome list of :func:`~repro.runner.runner.run_grid`
    matches the spec list index-for-index; callers that slice outcomes
    positionally (rather than grouping by spec fields) must pass the
    order explicitly instead of assuming one.
    """
    if not scenarios or not algorithms or not seeds:
        raise ConfigurationError(
            "expand_grid needs at least one scenario, algorithm and seed"
        )
    if order not in ("scenario-major", "seed-major"):
        raise ConfigurationError(
            f"unknown expand_grid order {order!r}; "
            f"available: ['scenario-major', 'seed-major']"
        )

    def build(sc: str, alg: str, seed: int) -> RunSpec:
        return RunSpec(
            scenario=sc,
            algorithm=alg,
            seed=int(seed),
            max_rounds=max_rounds,
            scenario_kwargs=dict(scenario_kwargs or {}),
            algorithm_kwargs=dict(algorithm_kwargs or {}),
            sim_kwargs=dict(sim_kwargs or {}),
            engine=engine,
            recorder=recorder,
            probe=probe,
        )

    if order == "seed-major":
        return [
            build(sc, alg, seed)
            for seed in seeds
            for sc in scenarios
            for alg in algorithms
        ]
    return [
        build(sc, alg, seed)
        for sc in scenarios
        for alg in algorithms
        for seed in seeds
    ]


def expand_component_grid(
    algorithms: Sequence[str],
    seeds: Sequence[int],
    topologies: Sequence[str],
    placements: Sequence[str] = ("hotspot",),
    links: Sequence[str] = ("unit",),
    heterogeneity: Sequence[str | None] = (None,),
    dynamics: Sequence[str | None] = (None,),
    **expand_kwargs,
) -> list[RunSpec]:
    """Axis-wise grid expansion over scenario *components*.

    The scenario axis of :func:`expand_grid` becomes a cross product
    over component axes (each a sequence of grammar tokens; ``None``
    omits an optional kind), so a systematic comparison à la Eibl &
    Rüde — every topology × every load shape × every churn model — is
    one call::

        specs = expand_component_grid(
            ["pplb", "diffusion"], grid_seeds(3),
            topologies=["mesh:16x16", "torus:16x16", "hypercube:8"],
            placements=["hotspot", "clustered", "power-law"],
            dynamics=[None, "diurnal"],
        )

    Remaining keyword arguments are forwarded to :func:`expand_grid`.
    """
    from repro.workloads.composition import compose_scenarios

    scenarios = compose_scenarios(
        topologies, placements, links, heterogeneity, dynamics
    )
    return expand_grid(scenarios, algorithms, seeds, **expand_kwargs)
