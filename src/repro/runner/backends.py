"""Pluggable execution backends: where grid tasks actually run.

The runner used to hard-wire its fan-out to a fresh
:class:`~concurrent.futures.ProcessPoolExecutor` per :func:`run_grid`
call — fine for one big grid, wasteful for the tuning loop's hundreds
of small evaluation batches, where every batch re-pays worker spawn
(cold interpreter + full ``repro`` import per process). This module
generalises the execution seam behind :class:`ExecutionBackend`:

* :class:`SerialBackend` — the in-process loop, bit-identical to the
  historical ``workers <= 1`` path. The reference implementation.
* :class:`PoolBackend` — a **persistent** worker pool. The executor
  spawns lazily on first use and survives across calls (and therefore
  across ``run_grid``/``tune_scenario`` invocations), and tasks are
  submitted in contiguous **chunks** so a 200-spec grid costs ~tens of
  pickles, not hundreds. Spawns are observable: every chunk reports
  the worker PID that ran it, so :meth:`PoolBackend.stats` (and
  :class:`~repro.runner.runner.RunnerMetrics.workers_spawned`) count
  real process creations, not submissions.

The contract every backend obeys: :meth:`ExecutionBackend.map_timed`
returns ``(results, task_seconds)`` in **input order**, re-raises
worker exceptions (cancelling not-yet-started work), and times each
task inside the executing process. Because results cross the seam as
the same JSON payloads the cache stores, *every* backend produces
bit-identical results for identical specs — the differential tests in
``tests/runner/test_backends.py`` pin this.

A future distributed backend (SSH / work queue, following psim's
``sweep_base.py`` worker-farm pattern) plugs in here: implement
``map_timed`` over the remote transport, register it in
:data:`_BACKENDS`, and the runner, the tuner and the CLI pick it up
unchanged — nothing above this seam knows how tasks travel.

Module-level helpers (:class:`_ChunkCall`) are picklable by reference,
as the pool transport requires.
"""

from __future__ import annotations

import atexit
import os
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence, TypeVar

from repro.exceptions import ConfigurationError
from repro.runner.pool import resolve_workers

T = TypeVar("T")
R = TypeVar("R")

#: result-collection callback: (input index, result, in-task seconds).
OnResult = Callable[[int, R, float], None]


class _ChunkCall:
    """Picklable chunk task: run *fn* over a slice of items, timed.

    Returns ``(worker_pid, [(result, task_seconds), ...])`` — the PID
    is how the parent counts *actual* process spawns (a reused worker
    keeps its PID), and the per-item clock runs inside the worker, so
    the timings exclude queueing and transport exactly like
    :class:`~repro.runner.pool._TimedCall`.
    """

    __slots__ = ("fn", "items")

    def __init__(self, fn: Callable[[T], R], items: Sequence[T]):
        self.fn = fn
        self.items = list(items)

    def __call__(self) -> tuple[int, list[tuple[R, float]]]:
        out = []
        for item in self.items:
            t0 = time.perf_counter()
            result = self.fn(item)
            out.append((result, time.perf_counter() - t0))
        return os.getpid(), out


class ExecutionBackend:
    """The execution seam: ordered, timed, fail-fast parallel map.

    Subclasses implement :meth:`map_timed`; everything else
    (:meth:`stats`, :meth:`close`) has safe defaults. Backends are
    long-lived — one instance may serve many ``run_grid`` calls — and
    :meth:`close` must be idempotent.
    """

    #: registry name (what ``--backend`` selects).
    name = "abstract"

    def workers(self) -> int:
        """Parallel width this backend executes with (>= 1)."""
        return 1

    def map_timed(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        on_result: OnResult | None = None,
    ) -> tuple[list[R], list[float]]:
        """Apply *fn* to every item; results and in-task seconds in
        input order. ``on_result(index, result, seconds)`` fires as
        each task lands (completion order); worker exceptions re-raise
        after pending work is cancelled."""
        raise NotImplementedError

    def stats(self) -> dict[str, object]:
        """Cumulative execution counters (spawns, calls, tasks)."""
        return {
            "backend": self.name,
            "workers": self.workers(),
            "workers_spawned": 0,
            "map_calls": 0,
            "tasks": 0,
            "chunks": 0,
        }

    def close(self) -> None:
        """Release held resources (idempotent; serial holds none)."""


class SerialBackend(ExecutionBackend):
    """In-process execution — the reference the others must match.

    Bit-identical to the historical ``workers <= 1`` loop: tasks run in
    input order, in this process, with no pickling; the first exception
    propagates immediately (nothing after it runs).
    """

    name = "serial"

    def __init__(self) -> None:
        self._map_calls = 0
        self._tasks = 0

    def map_timed(self, fn, items, on_result=None):
        items = list(items)
        self._map_calls += 1
        self._tasks += len(items)
        results: list = []
        seconds: list[float] = []
        for i, item in enumerate(items):
            t0 = time.perf_counter()
            result = fn(item)
            elapsed = time.perf_counter() - t0
            if on_result is not None:
                on_result(i, result, elapsed)
            results.append(result)
            seconds.append(elapsed)
        return results, seconds

    def stats(self) -> dict[str, object]:
        return {
            "backend": self.name,
            "workers": 1,
            "workers_spawned": 0,
            "map_calls": self._map_calls,
            "tasks": self._tasks,
            "chunks": 0,
        }


class PoolBackend(ExecutionBackend):
    """Persistent process pool with chunked task submission.

    Parameters
    ----------
    workers:
        Pool width (``0``/``None`` = one per core, via
        :func:`~repro.runner.pool.resolve_workers`, so the
        ``PPLB_WORKERS`` env override applies here too).
    chunk_size:
        Items per submitted chunk; default splits each call into
        ``~4 × workers`` chunks (enough slack for load balancing,
        few enough pickles to amortise IPC on large grids).

    The executor spawns lazily on the first :meth:`map_timed` and is
    *reused* by every later call until :meth:`close` — a tuning
    session's dozens of evaluation batches share one set of workers
    instead of respawning per batch. A :class:`BrokenProcessPool`
    (worker killed mid-task) discards the executor so the next call
    starts a fresh one.
    """

    name = "pool"

    def __init__(self, workers: int | None = None, chunk_size: int | None = None):
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self._workers = resolve_workers(workers)
        self._chunk_size = chunk_size
        self._executor: ProcessPoolExecutor | None = None
        self._pids_seen: set[int] = set()
        self._map_calls = 0
        self._tasks = 0
        self._chunks = 0

    def workers(self) -> int:
        return self._workers

    def _chunk_bounds(self, n: int) -> list[tuple[int, int]]:
        """Contiguous ``[start, stop)`` slices covering ``range(n)``."""
        if self._chunk_size is not None:
            size = self._chunk_size
        else:
            size = max(1, -(-n // (self._workers * 4)))  # ceil division
        return [(start, min(start + size, n)) for start in range(0, n, size)]

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self._workers)
        return self._executor

    def map_timed(self, fn, items, on_result=None):
        items = list(items)
        self._map_calls += 1
        self._tasks += len(items)
        results: list = [None] * len(items)
        seconds: list[float] = [0.0] * len(items)
        if not items:
            return results, seconds

        bounds = self._chunk_bounds(len(items))
        self._chunks += len(bounds)
        executor = self._ensure_executor()
        futures = {
            executor.submit(_ChunkCall(fn, items[start:stop])): (start, stop)
            for start, stop in bounds
        }
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                for future in done:
                    start, _stop = futures[future]
                    pid, pairs = future.result()  # re-raises worker errors
                    self._pids_seen.add(pid)
                    for offset, (result, elapsed) in enumerate(pairs):
                        i = start + offset
                        results[i] = result
                        seconds[i] = elapsed
                        if on_result is not None:
                            on_result(i, result, elapsed)
        except BrokenProcessPool:
            # The pool lost a worker mid-task; it cannot be reused.
            # Drop it so the next call spawns a fresh one.
            self._executor = None
            raise
        except BaseException:
            # Fail fast, but keep the (healthy) pool alive for the next
            # call: cancel queued chunks rather than shutting down.
            for future in pending:
                future.cancel()
            raise
        return results, seconds

    def stats(self) -> dict[str, object]:
        return {
            "backend": self.name,
            "workers": self._workers,
            "workers_spawned": len(self._pids_seen),
            "map_calls": self._map_calls,
            "tasks": self._tasks,
            "chunks": self._chunks,
        }

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(cancel_futures=True)
            self._executor = None


#: registry of constructible backends (``--backend`` choices). A
#: distributed (SSH / work-queue) backend registers here when it lands.
_BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    PoolBackend.name: PoolBackend,
}

BACKENDS = frozenset(_BACKENDS)

#: shared long-lived instances, keyed by (name, resolved width) — the
#: persistence that lets consecutive run_grid calls reuse one pool.
_shared: dict[tuple[str, int], ExecutionBackend] = {}


def make_backend(name: str, workers: int | None = None) -> ExecutionBackend:
    """A *fresh* backend instance by registry name (owned by the caller)."""
    cls = _BACKENDS.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {sorted(_BACKENDS)}"
        )
    if cls is SerialBackend:
        return SerialBackend()
    return cls(workers=workers)


def resolve_backend(
    backend: ExecutionBackend | str | None,
    workers: int | None = 1,
) -> ExecutionBackend:
    """The backend a runner call should execute on.

    * an :class:`ExecutionBackend` instance passes through unchanged
      (the caller owns its lifecycle);
    * a registry name returns the *shared* instance of that backend at
      the resolved worker width (created on first use, reused after);
    * ``None`` keeps the historical behaviour: serial for a resolved
      width of 1, the shared pool otherwise — so ``run_grid(...,
      workers=4)`` transparently upgrades to the persistent pool.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    width = resolve_workers(workers)
    if backend is None:
        backend = SerialBackend.name if width <= 1 else PoolBackend.name
    if backend not in _BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; available: {sorted(_BACKENDS)}"
        )
    if backend == SerialBackend.name:
        width = 1
    key = (backend, width)
    instance = _shared.get(key)
    if instance is None:
        instance = make_backend(backend, workers=width)
        _shared[key] = instance
    return instance


def shutdown_backends() -> None:
    """Close every shared backend (idempotent; re-resolving respawns)."""
    while _shared:
        _, instance = _shared.popitem()
        instance.close()


atexit.register(shutdown_backends)
