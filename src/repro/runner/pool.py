"""Minimal ordered parallel map over processes.

The one place process-pool mechanics live. :func:`map_tasks` is
deliberately tiny: results come back in input order, ``workers <= 1``
degrades to a plain in-process loop (bit-identical to historical serial
behaviour, and the default everywhere), and worker exceptions propagate
to the caller. Both the spec-level grid runner and the generic sweep
harness (:func:`repro.analysis.sweep.run_sweep`) fan out through here.

Parallel callables must be picklable (module-level functions); payloads
should be plain data. This module must stay import-light — it is
imported inside worker processes and by :mod:`repro.analysis.sweep`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class _TimedCall:
    """Picklable task wrapper returning ``(result, in-task seconds)``.

    A class (not a closure) so the pool can pickle it by reference as
    long as the wrapped ``fn`` itself is picklable; the clock runs
    inside the worker process, so the measurement is pure task time —
    queueing and transport are excluded.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[T], R]):
        self.fn = fn

    def __call__(self, item: T) -> tuple[R, float]:
        t0 = time.perf_counter()
        result = self.fn(item)
        return result, time.perf_counter() - t0


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker count (None/0 -> all cores, floor 1).

    A non-empty ``PPLB_WORKERS`` environment variable *pins* the width
    for every entry point that resolves through here (the runner, the
    sweep harness, the execution backends, tuning) — so CI and the
    smoke scripts can fix parallelism without threading a flag through
    every call site. Semantics match the argument: ``0`` means one per
    core, anything else is used directly (floor 1).
    """
    env = os.environ.get("PPLB_WORKERS")
    if env:
        from repro.exceptions import ConfigurationError

        try:
            workers = int(env)
        except ValueError:
            raise ConfigurationError(
                f"PPLB_WORKERS must be an integer (0 = one per core), "
                f"got {env!r}"
            ) from None
    if workers is None or workers == 0:
        return max(os.cpu_count() or 1, 1)
    return max(int(workers), 1)


def map_tasks(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int = 1,
    on_result: Callable[[int, R], None] | None = None,
) -> list[R]:
    """Apply *fn* to every item, in order; optionally fan out.

    Parameters
    ----------
    fn:
        The task body. For ``workers > 1`` it must be picklable
        (defined at module level).
    items:
        Inputs, one task each.
    workers:
        ``1`` (the default) runs serially in-process (no pool, no
        pickling); ``N > 1`` uses a
        :class:`~concurrent.futures.ProcessPoolExecutor` with ``N``
        workers; ``0``/``None`` means one worker per core.
    on_result:
        Optional callback ``(index, result)`` fired as each task
        finishes (serial: immediately after each call; parallel: in
        completion order). Results are *returned* in input order either
        way.

    Returns
    -------
    list
        ``[fn(item) for item in items]`` — input order, exceptions
        re-raised.
    """
    items = list(items)
    if not items:
        return []
    workers = resolve_workers(workers)
    if workers <= 1 or len(items) == 1:
        out: list[R] = []
        for i, item in enumerate(items):
            result = fn(item)
            if on_result is not None:
                on_result(i, result)
            out.append(result)
        return out

    results: dict[int, R] = {}
    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        futures = {pool.submit(fn, item): i for i, item in enumerate(items)}
        try:
            for future in as_completed(futures):
                i = futures[future]
                results[i] = future.result()  # re-raises worker exceptions
                if on_result is not None:
                    on_result(i, results[i])
        except BaseException:
            # Fail fast: drop all queued (not-yet-started) tasks so the
            # error surfaces after at most the in-flight ones finish,
            # not after the whole remaining grid runs.
            pool.shutdown(cancel_futures=True)
            raise
    return [results[i] for i in range(len(items))]


def map_tasks_timed(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: int = 1,
    on_result: Callable[[int, R, float], None] | None = None,
) -> tuple[list[R], list[float]]:
    """:func:`map_tasks` plus a per-task in-worker wall clock.

    Same ordering/exception semantics as :func:`map_tasks`; each task is
    additionally timed *inside* the executing process (serial: around
    the direct call), so the second return value is what the work itself
    cost, independent of pool queueing. ``on_result`` (if given) fires
    as ``(index, result, task_seconds)``.

    Returns
    -------
    (results, task_seconds):
        Both in input order, ``len(items)`` each.
    """
    items = list(items)
    seconds: list[float] = [0.0] * len(items)

    def unpack(i: int, pair: tuple[R, float]) -> None:
        seconds[i] = pair[1]
        if on_result is not None:
            on_result(i, pair[0], pair[1])

    pairs = map_tasks(_TimedCall(fn), items, workers=workers, on_result=unpack)
    return [pair[0] for pair in pairs], seconds
