"""Parallel experiment runner with content-addressed result caching.

The orchestration layer that fans a grid of (scenario × algorithm ×
seed) simulation specs across worker processes and replays previously
computed results from an on-disk cache:

* :mod:`spec <repro.runner.spec>` — :class:`RunSpec` (plain-data run
  description, content-hashable) and grid expansion helpers.
* :mod:`registry <repro.runner.registry>` — balancer-by-name factories
  shared with the CLI.
* :mod:`worker <repro.runner.worker>` — spec execution (the pure
  function spec → result that runs inside workers).
* :mod:`pool <repro.runner.pool>` — ordered parallel map over
  processes (also used by :func:`repro.analysis.sweep.run_sweep`);
  :func:`map_tasks_timed` adds an in-worker per-task clock.
* :mod:`backends <repro.runner.backends>` — pluggable execution
  backends behind one :class:`ExecutionBackend` contract: ``serial``
  (in-process reference loop) and ``pool`` (persistent, chunked
  worker pool reused across grids and tune sessions).
* :mod:`cache <repro.runner.cache>` — content-addressed JSON result
  store with an append-only ``index.jsonl`` sidecar (O(entries)
  metadata: fast stats, per-engine filters, metric-level replays);
  re-running a computed grid is free.
* :mod:`sink <repro.runner.sink>` — :class:`ColumnarResultLog`,
  the streaming columnar sink ``run_grid(..., sink=...)`` appends
  finished specs to as they land.
* :mod:`runner <repro.runner.runner>` — :func:`run_grid`, the
  orchestrator tying the above together; pass a
  :class:`RunnerMetrics` to measure the execution pass itself
  (cache split, per-spec task time, worker utilization, queue wait,
  backend worker spawns).
* :mod:`merge <repro.runner.merge>` — adapters into the existing
  analysis structures (``SweepResult``, table rows, runner-metric
  rows).

Typical use (also exposed as ``pplb run-grid``)::

    from repro.runner import expand_grid, grid_seeds, run_grid

    specs = expand_grid(["mesh-hotspot", "torus-hotspot"],
                        ["pplb", "diffusion"], grid_seeds(4),
                        max_rounds=300)
    outcomes = run_grid(specs, workers=4, cache=".pplb-cache")

Serial mode (``workers=1``, the default) is the reference: parallel and
cached executions return results identical to it.
"""

from repro.runner.backends import (
    BACKENDS,
    ExecutionBackend,
    PoolBackend,
    SerialBackend,
    make_backend,
    resolve_backend,
    shutdown_backends,
)
from repro.runner.cache import ResultCache
from repro.runner.merge import (
    default_metrics,
    metrics_to_rows,
    outcomes_to_rows,
    outcomes_to_sweep,
    spec_value,
)
from repro.runner.pool import map_tasks, map_tasks_timed, resolve_workers
from repro.runner.registry import FACTORIES, FLUID_FACTORIES, make_balancer
from repro.runner.runner import RunnerMetrics, RunOutcome, run_grid
from repro.runner.sink import METRIC_FIELDS, ColumnarResultLog
from repro.runner.spec import (
    ENGINES,
    RunSpec,
    expand_component_grid,
    expand_grid,
    grid_seeds,
)
from repro.runner.worker import execute_spec

__all__ = [
    "BACKENDS",
    "ENGINES",
    "FACTORIES",
    "FLUID_FACTORIES",
    "METRIC_FIELDS",
    "ColumnarResultLog",
    "ExecutionBackend",
    "PoolBackend",
    "ResultCache",
    "RunOutcome",
    "RunSpec",
    "SerialBackend",
    "default_metrics",
    "execute_spec",
    "expand_component_grid",
    "expand_grid",
    "grid_seeds",
    "make_backend",
    "make_balancer",
    "map_tasks",
    "map_tasks_timed",
    "metrics_to_rows",
    "outcomes_to_rows",
    "outcomes_to_sweep",
    "resolve_backend",
    "resolve_workers",
    "run_grid",
    "RunnerMetrics",
    "shutdown_backends",
    "spec_value",
]
