"""Content-addressed on-disk result cache.

Each cached entry is one JSON file named by the spec's content hash
(sharded by the first two hex digits to keep directories small) and
holds both the spec that produced it and the serialized
:class:`~repro.sim.SimulationResult`. Because a spec's execution is a
pure function of its content, a hit can be replayed in place of a
simulation — re-running an already-computed grid is free.

Robustness: writes are atomic (temp file + ``os.replace``) so an
interrupted run never leaves a truncated entry, and unreadable/corrupt
entries are treated as misses rather than errors.
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import tempfile

logger = logging.getLogger(__name__)

CACHE_FORMAT_VERSION = 1


class ResultCache:
    """JSON result store addressed by :meth:`RunSpec.key` hashes.

    Parameters
    ----------
    root:
        Directory to store entries under (created lazily on first put).

    Attributes
    ----------
    hits, misses:
        Lookup counters since construction (cache-effectiveness
        reporting in the runner's progress summary).
    """

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> pathlib.Path:
        """Entry path for a content hash (``<root>/<k[:2]>/<k>.json``)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Stored payload for *key*, or None (corrupt entries = miss)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            # ValueError covers both JSONDecodeError and the
            # UnicodeDecodeError a binary stray file raises.
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or "result" not in entry
            or entry.get("version") != CACHE_FORMAT_VERSION
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def put(self, key: str, spec_dict: dict, result_payload: dict) -> pathlib.Path:
        """Atomically store a result payload under *key*."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "spec": spec_dict,
            "result": result_payload,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        """Number of entries on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def stats(self) -> dict[str, object]:
        """On-disk usage summary (``pplb cache stats``).

        Returns ``root``, whether it exists, entry count, total payload
        bytes, the mean entry size and a per-engine entry breakdown
        (``by_engine``, read from each entry's stored spec; entries
        whose spec cannot be read count under ``"(unreadable)"``) —
        everything needed to decide whether the cache is worth keeping
        or due a :meth:`clear`, and the number that makes a wire-format
        change (e.g. the columnar round log) visible on disk.
        """
        entries = 0
        total_bytes = 0
        by_engine: dict[str, int] = {}
        if self.root.is_dir():
            for path in self.root.glob("*/*.json"):
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue  # entry vanished mid-scan
                entries += 1
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        spec = json.load(fh).get("spec") or {}
                    engine = str(spec.get("engine", "rounds"))
                except (OSError, ValueError, AttributeError) as exc:
                    # Stray non-JSON (or binary: UnicodeDecodeError is a
                    # ValueError) files must not crash the stats scan.
                    logger.warning("skipping unreadable cache entry %s: %s", path, exc)
                    engine = "(unreadable)"
                by_engine[engine] = by_engine.get(engine, 0) + 1
        return {
            "root": str(self.root),
            "exists": self.root.is_dir(),
            "entries": entries,
            "total_bytes": total_bytes,
            "mean_bytes": total_bytes / entries if entries else 0.0,
            "by_engine": by_engine,
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed.

        Leaves the root directory itself in place (it may be configured
        in scripts) but prunes the now-empty shard subdirectories.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        for shard in self.root.iterdir():
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # non-empty (stray files) — leave it
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(root={str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
