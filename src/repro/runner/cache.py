"""Content-addressed on-disk result cache.

Each cached entry is one JSON file named by the spec's content hash
(sharded by the first two hex digits to keep directories small) and
holds both the spec that produced it and the serialized
:class:`~repro.sim.SimulationResult`. Because a spec's execution is a
pure function of its content, a hit can be replayed in place of a
simulation — re-running an already-computed grid is free.

Robustness: writes are atomic (temp file + ``os.replace``) so an
interrupted run never leaves a truncated entry, and unreadable/corrupt
entries are treated as misses rather than errors.

The index sidecar
-----------------
``<root>/index.jsonl`` is an append-only metadata log: one line per
:meth:`put` with the entry's key, spec coordinates, payload size and
(when the writer supplies them) the :func:`~repro.runner.sink.
default_metrics` scalars. It exists so metadata questions —
:meth:`stats`, per-engine filters, metric-level grid replays — cost
O(entries) small-line parses instead of O(total bytes) full-payload
parses. The **store stays the source of truth**: every index read is
cross-checked against entry existence, a missing/stale index degrades
to the legacy full scan, and :meth:`rebuild_index` regenerates it
atomically (temp file + ``os.replace``).

Concurrent multi-process writers stay safe: each index append is a
single ``O_APPEND`` write of one line (atomic for these sizes on
POSIX), entry writes keep the tmp+replace discipline, and
:meth:`load_index` skips torn/malformed lines (last line of a crashed
writer) with last-write-wins per key.
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import tempfile

logger = logging.getLogger(__name__)

CACHE_FORMAT_VERSION = 1

#: the metadata sidecar's filename (lives at the cache root, outside
#: the two-hex-digit shard directories so entry scans never see it).
INDEX_NAME = "index.jsonl"


class ResultCache:
    """JSON result store addressed by :meth:`RunSpec.key` hashes.

    Parameters
    ----------
    root:
        Directory to store entries under (created lazily on first put).

    Attributes
    ----------
    hits, misses:
        Lookup counters since construction (cache-effectiveness
        reporting in the runner's progress summary).
    """

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        #: lazily-loaded view of the index sidecar (key -> metadata);
        #: None until first metadata read, refreshed by invalidation.
        self._index: dict[str, dict] | None = None

    @property
    def index_path(self) -> pathlib.Path:
        """Location of the metadata sidecar."""
        return self.root / INDEX_NAME

    def path_for(self, key: str) -> pathlib.Path:
        """Entry path for a content hash (``<root>/<k[:2]>/<k>.json``)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Stored payload for *key*, or None (corrupt entries = miss)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            # ValueError covers both JSONDecodeError and the
            # UnicodeDecodeError a binary stray file raises.
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or "result" not in entry
            or entry.get("version") != CACHE_FORMAT_VERSION
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry["result"]

    def put(
        self,
        key: str,
        spec_dict: dict,
        result_payload: dict,
        metrics: dict | None = None,
    ) -> pathlib.Path:
        """Atomically store a result payload under *key*.

        ``metrics`` (optional, :func:`~repro.runner.sink.
        default_metrics`-shaped) rides into the index sidecar so later
        metric-level reads skip the full payload entirely.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "spec": spec_dict,
            "result": result_payload,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        meta = self._index_meta(key, spec_dict, path, metrics)
        self._append_index_line(meta)
        if self._index is not None:
            self._index[key] = meta
        return path

    # --------------------------- the index --------------------------- #

    @staticmethod
    def _index_meta(key: str, spec_dict: dict, path: pathlib.Path,
                    metrics: dict | None) -> dict:
        meta = {
            "key": key,
            "scenario": str(spec_dict.get("scenario", "")),
            "algorithm": str(spec_dict.get("algorithm", "")),
            "seed": int(spec_dict.get("seed", 0)),
            "engine": str(spec_dict.get("engine", "rounds")),
            "recorder": str(spec_dict.get("recorder", "full")),
        }
        try:
            meta["bytes"] = path.stat().st_size
        except OSError:
            meta["bytes"] = 0
        if metrics is not None:
            meta["metrics"] = {k: float(v) for k, v in metrics.items()}
        return meta

    def _append_index_line(self, meta: dict) -> None:
        """One O_APPEND write per line: atomic at these sizes on POSIX,
        so concurrent writers interleave whole lines, never fragments."""
        line = (json.dumps(meta, sort_keys=True) + "\n").encode("utf-8")
        try:
            fd = os.open(
                self.index_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, line)
            finally:
                os.close(fd)
        except OSError as exc:  # index is an accelerator, never a gate
            logger.warning("could not append cache index line: %s", exc)

    def load_index(self) -> dict[str, dict]:
        """The index sidecar as ``{key: metadata}`` (cached in memory).

        Malformed lines — a torn write from a crashed process, stray
        garbage — are skipped; duplicate keys resolve last-write-wins
        (an append-only log re-putting a key appends a newer line).
        Missing sidecar = empty mapping (callers fall back to the
        legacy full scan).
        """
        if self._index is not None:
            return self._index
        index: dict[str, dict] = {}
        try:
            with open(self.index_path, "r", encoding="utf-8") as fh:
                for raw in fh:
                    raw = raw.strip()
                    if not raw:
                        continue
                    try:
                        meta = json.loads(raw)
                    except ValueError:
                        continue  # torn line — skip, keep the rest
                    if isinstance(meta, dict) and isinstance(meta.get("key"), str):
                        index[meta["key"]] = meta
        except OSError:
            pass  # no sidecar yet (pre-index cache, or empty cache)
        self._index = index
        return index

    def invalidate_index(self) -> None:
        """Drop the in-memory index view (next read re-loads the file).

        Call after another process may have appended (e.g. between
        grid passes of a multi-host run); single-process use never
        needs it — :meth:`put` keeps the view current.
        """
        self._index = None

    def metrics_for(self, key: str) -> dict | None:
        """Indexed :func:`default_metrics` scalars for *key*, or None.

        None means "not answerable from the index" — the entry is
        missing, pre-dates the index, or was indexed without metrics —
        and the caller should fall back to :meth:`get`. The entry file
        is stat-checked so a stale index line never fabricates a hit.
        """
        meta = self.load_index().get(key)
        if meta is None:
            return None
        metrics = meta.get("metrics")
        if not isinstance(metrics, dict):
            return None
        if not self.path_for(key).exists():
            return None  # entry deleted since indexing — not a hit
        self.hits += 1
        return dict(metrics)

    def rebuild_index(self, with_metrics: bool = True) -> int:
        """Regenerate the sidecar from the store; returns entries indexed.

        Atomic (temp file + ``os.replace``), so concurrent readers see
        either the old or the new index, never a partial one. With
        ``with_metrics`` (the default) each entry's result is rebuilt
        once to store its :func:`default_metrics` scalars — the upfront
        cost that makes later metric-level replays O(index).
        """
        if with_metrics:
            # Lazy imports: the cache stays import-light for workers;
            # rebuilding is an explicit maintenance operation.
            from repro.runner.sink import default_metrics
            from repro.sim import SimulationResult

        count = 0
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                if self.root.is_dir():
                    for path in sorted(self.root.glob("*/*.json")):
                        try:
                            with open(path, "r", encoding="utf-8") as entry_fh:
                                entry = json.load(entry_fh)
                            key = entry["key"]
                            spec = entry.get("spec") or {}
                        except (OSError, ValueError, KeyError, TypeError) as exc:
                            logger.warning(
                                "reindex skipping unreadable entry %s: %s",
                                path, exc,
                            )
                            continue
                        metrics = None
                        if with_metrics:
                            try:
                                result = SimulationResult.from_dict(
                                    entry["result"]
                                )
                                metrics = default_metrics(result)
                            except Exception as exc:
                                logger.warning(
                                    "reindex: no metrics for %s: %s", path, exc
                                )
                        meta = self._index_meta(key, spec, path, metrics)
                        fh.write(json.dumps(meta, sort_keys=True) + "\n")
                        count += 1
            os.replace(tmp, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._index = None
        return count

    # ------------------------- introspection ------------------------- #

    def __len__(self) -> int:
        """Number of entries on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def stats(self) -> dict[str, object]:
        """On-disk usage summary (``pplb cache stats``).

        Returns ``root``, whether it exists, entry count, total payload
        bytes, the mean entry size and a per-engine entry breakdown
        (``by_engine``) — everything needed to decide whether the cache
        is worth keeping or due a :meth:`clear`, and the number that
        makes a wire-format change (e.g. the columnar round log)
        visible on disk.

        Entry counts and byte totals come from a directory scan (cheap,
        always exact); the per-entry *spec* metadata is answered from
        the index sidecar where possible — O(entries) line lookups —
        and only entries the index does not cover fall back to the
        legacy full-payload parse (entries whose spec cannot be read
        either way count under ``"(unreadable)"``). ``indexed`` reports
        the sidecar's coverage of the scanned entries.
        """
        entries = 0
        total_bytes = 0
        indexed = 0
        by_engine: dict[str, int] = {}
        index = self.load_index()
        if self.root.is_dir():
            for path in self.root.glob("*/*.json"):
                try:
                    total_bytes += path.stat().st_size
                except OSError:
                    continue  # entry vanished mid-scan
                entries += 1
                meta = index.get(path.stem)
                if meta is not None and "engine" in meta:
                    indexed += 1
                    engine = str(meta["engine"])
                else:
                    try:
                        with open(path, "r", encoding="utf-8") as fh:
                            spec = json.load(fh).get("spec") or {}
                        engine = str(spec.get("engine", "rounds"))
                    except (OSError, ValueError, AttributeError) as exc:
                        # Stray non-JSON (or binary: UnicodeDecodeError
                        # is a ValueError) files must not crash the scan.
                        logger.warning(
                            "skipping unreadable cache entry %s: %s", path, exc
                        )
                        engine = "(unreadable)"
                by_engine[engine] = by_engine.get(engine, 0) + 1
        return {
            "root": str(self.root),
            "exists": self.root.is_dir(),
            "entries": entries,
            "total_bytes": total_bytes,
            "mean_bytes": total_bytes / entries if entries else 0.0,
            "by_engine": by_engine,
            "indexed": indexed,
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> int:
        """Delete every cached entry; returns how many were removed.

        Leaves the root directory itself in place (it may be configured
        in scripts) but prunes the now-empty shard subdirectories and
        the index sidecar (which indexes nothing once the store is
        empty).
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        try:
            self.index_path.unlink()
        except OSError:
            pass  # never existed (pre-index cache) — fine
        self._index = None
        for shard in self.root.iterdir():
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # non-empty (stray files) — leave it
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(root={str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
