"""Many particles on a self-generated surface (paper §4.1, continuous).

The paper's load-balancing surface is *dynamic*: "the hills and valleys
of the surface may change their height over the time as the loads are
transferred". In the discrete system the loads themselves are the
heights; this module realises the same feedback in continuous space:

* Each particle *k* (mass ``m_k``, the load quantity) contributes a
  Gaussian bump ``m_k·A·exp(−|p − p_k|²/2w²)`` to the surface.
* Particle *i* feels the gradient of the *other* particles' bumps plus
  any static terrain — it slides away from concentrations of mass,
  downhill into empty regions, under the same µs/µk friction laws as
  the single-particle model.
* Equilibrium = particles spread to (capacity-)uniform density: load
  balancing as literal physics, no algorithm in sight.

This is the conceptual bridge the paper draws in §4; the discrete
balancer (`repro.core`) is its network-constrained counterpart. The
experiments measure the density CoV over time — the same imbalance
metric as the load system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.physics.constants import PhysicsParams
from repro.physics.heightfield import HeightField


@dataclass
class SwarmResult:
    """Outcome of a multi-particle run.

    Attributes
    ----------
    positions:
        Final particle positions, shape ``(n, 2)``.
    trajectory:
        Recorded snapshots, shape ``(n_snapshots, n, 2)``.
    snapshot_times:
        Step index of each snapshot.
    settled:
        Whether every particle came to rest.
    steps:
        Integration steps taken.
    """

    positions: np.ndarray
    trajectory: np.ndarray
    snapshot_times: list[int]
    settled: bool
    steps: int


class MultiParticleSimulator:
    """N particles on their own mass-generated surface.

    Parameters
    ----------
    masses:
        Positive particle masses (load quantities), shape ``(n,)``.
    params:
        Friction/integrator constants (the single-particle set).
    kernel_width:
        Gaussian bump width *w*: how far a particle's presence raises
        the surface around it (the 'footprint' of a load).
    kernel_height:
        Bump amplitude per unit mass.
    terrain:
        Optional static heightfield added to the dynamic surface
        (machine structure: permanently slow/hot regions).
    extent:
        Domain size; particles reflect at the walls.
    """

    def __init__(
        self,
        masses: np.ndarray,
        params: PhysicsParams = PhysicsParams(),
        kernel_width: float = 0.08,
        kernel_height: float = 1.0,
        terrain: HeightField | None = None,
        extent: tuple[float, float] = (1.0, 1.0),
    ):
        masses = np.asarray(masses, dtype=np.float64)
        if masses.ndim != 1 or masses.shape[0] == 0:
            raise ConfigurationError(f"masses must be a non-empty 1-D array, got {masses.shape}")
        if (masses <= 0).any():
            raise ConfigurationError("all masses must be positive")
        if kernel_width <= 0 or kernel_height <= 0:
            raise ConfigurationError(
                f"kernel width/height must be positive, got {kernel_width}, {kernel_height}"
            )
        if terrain is not None and terrain.extent != tuple(extent):
            raise ConfigurationError(
                f"terrain extent {terrain.extent} must match domain extent {tuple(extent)}"
            )
        self.masses = masses
        self.n = masses.shape[0]
        self.params = params
        self.w = float(kernel_width)
        self.a = float(kernel_height)
        self.terrain = terrain
        self.extent = (float(extent[0]), float(extent[1]))

    # ------------------------------------------------------------------ #

    def surface_height(self, points: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Total surface height at *points* for particles at *positions*."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        diff = pts[:, None, :] - positions[None, :, :]
        r2 = (diff**2).sum(axis=-1)
        bumps = (self.a * self.masses[None, :] * np.exp(-r2 / (2 * self.w**2))).sum(axis=1)
        if self.terrain is not None:
            bumps = bumps + self.terrain.height(pts)
        return bumps

    def _gradients(self, positions: np.ndarray) -> np.ndarray:
        """∇f at each particle, excluding its own bump. Shape (n, 2)."""
        diff = positions[:, None, :] - positions[None, :, :]  # (n, n, 2)
        r2 = (diff**2).sum(axis=-1)
        k = self.a * self.masses[None, :] * np.exp(-r2 / (2 * self.w**2))
        np.fill_diagonal(k, 0.0)  # no self-force
        # ∇_p exp(−|p−q|²/2w²) = −(p−q)/w² · kernel, so ∇f points toward
        # the other particles (the surface rises near mass) and the
        # −g·∇f acceleration pushes particles apart, downhill.
        grad = -(diff * k[:, :, None]).sum(axis=1) / (self.w**2)
        if self.terrain is not None:
            grad = grad + self.terrain.gradient(positions)
        return grad

    # ------------------------------------------------------------------ #

    def run(
        self,
        positions: np.ndarray,
        max_steps: int | None = None,
        snapshot_every: int = 200,
    ) -> SwarmResult:
        """Integrate the swarm until everything rests (or *max_steps*)."""
        p = self.params
        steps_cap = int(max_steps if max_steps is not None else p.max_steps)
        pos = np.array(positions, dtype=np.float64)
        if pos.shape != (self.n, 2):
            raise ConfigurationError(
                f"positions must have shape ({self.n}, 2), got {pos.shape}"
            )
        vel = np.zeros_like(pos)
        lx, ly = self.extent
        dt, g, mu_s, mu_k, rest = p.dt, p.g, p.mu_s, p.mu_k, p.rest_speed

        snaps = [pos.copy()]
        snap_times = [0]
        settled = False
        n_steps = 0
        # Per-particle stick-slip detection: a particle that makes no real
        # progress for stall_steps consecutive steps is pinned (typically
        # against a wall by its neighbors' bumps) and freezes for the rest
        # of the run; its bump still shapes the surface for the others.
        stall = np.zeros(self.n, dtype=np.int64)
        frozen = np.zeros(self.n, dtype=bool)
        window_start = pos.copy()

        for n_steps in range(1, steps_cap + 1):
            grad = self._gradients(pos)
            speed = np.linalg.norm(vel, axis=1)
            moving = (speed > rest) & ~frozen
            gmag = np.linalg.norm(grad, axis=1)
            # Breakaway needs the slope to beat static friction AND the
            # kinetic friction that instantly applies once moving (the
            # Coulomb stick-slip limit — otherwise slip is infinitesimal).
            breakaway = ~moving & ~frozen & (gmag > mu_s) & (gmag > mu_k)

            if not moving.any() and not breakaway.any():
                vel[:] = 0.0
                settled = True
                break

            # friction direction: opposes velocity (moving) or incipient
            # downhill motion (breakaway, i.e. up-gradient)
            fric = np.zeros_like(vel)
            mv = moving
            fric[mv] = -vel[mv] / speed[mv, None]
            ba = breakaway
            fric[ba] = grad[ba] / gmag[ba, None]

            active = moving | breakaway
            accel = np.zeros_like(vel)
            accel[active] = -g * grad[active] + mu_k * g * fric[active]
            new_vel = vel + dt * accel
            # friction cannot reverse motion within a step
            flipped = moving & ((new_vel * vel).sum(axis=1) < 0.0)
            weak_grav = np.linalg.norm(g * grad, axis=1) * dt < speed
            new_vel[flipped & weak_grav] = 0.0
            vel = new_vel
            vel[~active] = 0.0

            prev_pos = pos
            pos = pos + dt * vel
            # wall reflections
            for axis, bound in enumerate((lx, ly)):
                low = pos[:, axis] < 0.0
                pos[low, axis] = -pos[low, axis]
                vel[low, axis] = -vel[low, axis]
                high = pos[:, axis] > bound
                pos[high, axis] = 2.0 * bound - pos[high, axis]
                vel[high, axis] = -vel[high, axis]
            np.clip(pos[:, 0], 0.0, lx, out=pos[:, 0])
            np.clip(pos[:, 1], 0.0, ly, out=pos[:, 1])

            # stall bookkeeping: per-step displacement catches dead stops;
            # the windowed check below catches micro-oscillation (pairs
            # jiggling in place without net progress).
            moved = np.linalg.norm(pos - prev_pos, axis=1)
            stalled_now = moved < rest * dt
            stall[stalled_now] += 1
            stall[~stalled_now] = 0
            newly_frozen = stall >= p.stall_steps
            if newly_frozen.any():
                frozen |= newly_frozen
                vel[newly_frozen] = 0.0

            if n_steps % p.stall_steps == 0:
                window_moved = np.linalg.norm(pos - window_start, axis=1)
                jigglers = ~frozen & (window_moved < 1e-4)
                if jigglers.any():
                    frozen |= jigglers
                    vel[jigglers] = 0.0
                window_start = pos.copy()

            if n_steps % snapshot_every == 0:
                snaps.append(pos.copy())
                snap_times.append(n_steps)

        if snap_times[-1] != n_steps:
            snaps.append(pos.copy())
            snap_times.append(n_steps)

        return SwarmResult(
            positions=pos,
            trajectory=np.asarray(snaps),
            snapshot_times=snap_times,
            settled=settled,
            steps=n_steps,
        )

    # ------------------------------------------------------------------ #

    def density_cov(self, positions: np.ndarray, bins: int = 8) -> float:
        """Imbalance of the mass distribution: CoV over a bins×bins grid.

        The continuous analogue of the load system's CoV metric; 0 means
        perfectly uniform mass density.
        """
        if bins < 2:
            raise ConfigurationError(f"bins must be >= 2, got {bins}")
        hist, _, _ = np.histogram2d(
            positions[:, 0],
            positions[:, 1],
            bins=bins,
            range=[[0, self.extent[0]], [0, self.extent[1]]],
            weights=self.masses,
        )
        mean = hist.mean()
        return float(hist.std() / mean) if mean > 0 else 0.0

    def mean_pairwise_distance(self, positions: np.ndarray) -> float:
        """Average inter-particle distance (spreading measure)."""
        if self.n < 2:
            return 0.0
        diff = positions[:, None, :] - positions[None, :, :]
        d = np.sqrt((diff**2).sum(axis=-1))
        iu = np.triu_indices(self.n, k=1)
        return float(d[iu].mean())
