"""Bilinear heightfield: the 'bumpy yard' of paper §3.1.

A :class:`HeightField` stores surface heights ``z[i, j]`` on a regular
grid over ``[0, Lx] × [0, Ly]`` and provides continuous height and
gradient queries via bilinear interpolation. Builders compose analytic
hills/valleys (Gaussian bumps), paraboloid bowls and band-limited random
terrain — the shapes used throughout the physics validation experiments.

Conventions
-----------
* ``z`` has shape ``(nx, ny)``; axis 0 is x, axis 1 is y.
* Heights are non-negative by convention in the experiments (the paper's
  potential energy baseline is ``z = 0``), but the class itself allows any
  real values.
* Outside the domain, queries clamp to the boundary; the dynamics layer
  additionally reflects particles at the walls so that nothing escapes
  the yard.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


class HeightField:
    """A rectangular grid surface with bilinear interpolation.

    Parameters
    ----------
    z:
        ``(nx, ny)`` array of heights at the grid nodes.
    extent:
        Physical size ``(Lx, Ly)`` of the domain. Grid node ``(i, j)``
        sits at ``(i * Lx/(nx-1), j * Ly/(ny-1))``.
    """

    def __init__(self, z: np.ndarray, extent: tuple[float, float] = (1.0, 1.0)):
        z = np.asarray(z, dtype=np.float64)
        if z.ndim != 2 or z.shape[0] < 2 or z.shape[1] < 2:
            raise ConfigurationError(f"z must be a 2-D grid of at least 2x2, got shape {z.shape}")
        lx, ly = float(extent[0]), float(extent[1])
        if lx <= 0 or ly <= 0:
            raise ConfigurationError(f"extent must be positive, got {extent}")
        self.z = z
        self.extent = (lx, ly)
        self.nx, self.ny = z.shape
        self.dx = lx / (self.nx - 1)
        self.dy = ly / (self.ny - 1)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def _locate(self, p: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return cell indices and in-cell fractions for points *p*.

        Points are clamped to the domain; *p* has shape ``(..., 2)``.
        """
        x = np.clip(p[..., 0], 0.0, self.extent[0])
        y = np.clip(p[..., 1], 0.0, self.extent[1])
        fx = x / self.dx
        fy = y / self.dy
        i = np.minimum(fx.astype(np.int64), self.nx - 2)
        j = np.minimum(fy.astype(np.int64), self.ny - 2)
        tx = fx - i
        ty = fy - j
        return i, j, tx, ty

    def height(self, p) -> np.ndarray | float:
        """Bilinear surface height at point(s) *p* of shape ``(..., 2)``."""
        p = np.asarray(p, dtype=np.float64)
        scalar = p.ndim == 1
        pts = np.atleast_2d(p)
        i, j, tx, ty = self._locate(pts)
        z = self.z
        h = (
            z[i, j] * (1 - tx) * (1 - ty)
            + z[i + 1, j] * tx * (1 - ty)
            + z[i, j + 1] * (1 - tx) * ty
            + z[i + 1, j + 1] * tx * ty
        )
        return float(h[0]) if scalar else h

    def gradient(self, p) -> np.ndarray:
        """Surface gradient ``(∂z/∂x, ∂z/∂y)`` at point(s) *p*.

        Within each cell the bilinear patch has an exact gradient that is
        affine in the in-cell fractions; this returns that exact value
        (no finite differencing beyond the grid resolution).
        """
        p = np.asarray(p, dtype=np.float64)
        scalar = p.ndim == 1
        pts = np.atleast_2d(p)
        i, j, tx, ty = self._locate(pts)
        z = self.z
        dzdx = (
            (z[i + 1, j] - z[i, j]) * (1 - ty) + (z[i + 1, j + 1] - z[i, j + 1]) * ty
        ) / self.dx
        dzdy = (
            (z[i, j + 1] - z[i, j]) * (1 - tx) + (z[i + 1, j + 1] - z[i + 1, j]) * tx
        ) / self.dy
        g = np.stack([dzdx, dzdy], axis=-1)
        return g[0] if scalar else g

    def slope(self, p) -> np.ndarray | float:
        """``tan β`` — gradient magnitude (the paper's steepness measure)."""
        g = self.gradient(p)
        m = np.linalg.norm(np.atleast_2d(g), axis=-1)
        return float(m[0]) if np.asarray(p).ndim == 1 else m

    # -- scalar fast paths (integrator hot loop) ----------------------- #
    #
    # The generic height()/gradient() queries accept arrays and pay
    # ~µs-scale numpy small-array overhead per call. The time-stepping
    # integrator queries one point per step, millions of times; these
    # pure-float versions implement the identical bilinear math with no
    # array allocation (~10x faster per call, bit-identical results).

    def height_scalar(self, x: float, y: float) -> float:
        """Bilinear height at one point, float-only (no numpy overhead)."""
        lx, ly = self.extent
        x = 0.0 if x < 0.0 else (lx if x > lx else x)
        y = 0.0 if y < 0.0 else (ly if y > ly else y)
        fx = x / self.dx
        fy = y / self.dy
        i = int(fx)
        j = int(fy)
        if i > self.nx - 2:
            i = self.nx - 2
        if j > self.ny - 2:
            j = self.ny - 2
        tx = fx - i
        ty = fy - j
        z = self.z
        return (
            z[i, j] * (1 - tx) * (1 - ty)
            + z[i + 1, j] * tx * (1 - ty)
            + z[i, j + 1] * (1 - tx) * ty
            + z[i + 1, j + 1] * tx * ty
        )

    def gradient_scalar(self, x: float, y: float) -> tuple[float, float]:
        """Exact bilinear-patch gradient at one point, float-only."""
        lx, ly = self.extent
        x = 0.0 if x < 0.0 else (lx if x > lx else x)
        y = 0.0 if y < 0.0 else (ly if y > ly else y)
        fx = x / self.dx
        fy = y / self.dy
        i = int(fx)
        j = int(fy)
        if i > self.nx - 2:
            i = self.nx - 2
        if j > self.ny - 2:
            j = self.ny - 2
        tx = fx - i
        ty = fy - j
        z = self.z
        z00 = z[i, j]
        z10 = z[i + 1, j]
        z01 = z[i, j + 1]
        z11 = z[i + 1, j + 1]
        dzdx = ((z10 - z00) * (1 - ty) + (z11 - z01) * ty) / self.dx
        dzdy = ((z01 - z00) * (1 - tx) + (z11 - z10) * tx) / self.dy
        return float(dzdx), float(dzdy)

    def grid_points(self) -> tuple[np.ndarray, np.ndarray]:
        """Coordinate vectors ``(xs, ys)`` of the grid nodes."""
        xs = np.linspace(0.0, self.extent[0], self.nx)
        ys = np.linspace(0.0, self.extent[1], self.ny)
        return xs, ys

    def min_height(self) -> float:
        """Lowest grid height (the global valley floor)."""
        return float(self.z.min())

    def max_height(self) -> float:
        """Highest grid height (the global peak)."""
        return float(self.z.max())

    def contains(self, p) -> bool:
        """Whether point *p* lies inside the physical domain."""
        p = np.asarray(p, dtype=np.float64)
        return bool(
            (0.0 <= p[0] <= self.extent[0]) and (0.0 <= p[1] <= self.extent[1])
        )

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #

    @classmethod
    def from_function(
        cls,
        f: Callable[[np.ndarray, np.ndarray], np.ndarray],
        shape: tuple[int, int] = (129, 129),
        extent: tuple[float, float] = (1.0, 1.0),
    ) -> "HeightField":
        """Sample ``z = f(X, Y)`` on a grid of the given *shape*."""
        nx, ny = shape
        xs = np.linspace(0.0, extent[0], nx)
        ys = np.linspace(0.0, extent[1], ny)
        X, Y = np.meshgrid(xs, ys, indexing="ij")
        return cls(np.asarray(f(X, Y), dtype=np.float64), extent)

    @classmethod
    def bowl(
        cls,
        depth: float = 1.0,
        shape: tuple[int, int] = (129, 129),
        extent: tuple[float, float] = (1.0, 1.0),
    ) -> "HeightField":
        """Paraboloid valley centred in the domain, rim height *depth*.

        The canonical single-valley surface: a particle released anywhere
        rolls toward the centre.
        """
        cx, cy = extent[0] / 2.0, extent[1] / 2.0
        rmax2 = cx**2 + cy**2

        def f(X, Y):
            return depth * ((X - cx) ** 2 + (Y - cy) ** 2) / rmax2

        return cls.from_function(f, shape, extent)

    @classmethod
    def hills(
        cls,
        centers: Sequence[tuple[float, float]],
        heights: Sequence[float],
        widths: Sequence[float],
        base: float = 0.0,
        shape: tuple[int, int] = (129, 129),
        extent: tuple[float, float] = (1.0, 1.0),
    ) -> "HeightField":
        """Sum of Gaussian bumps: ``base + Σ h_k exp(-r_k²/2w_k²)``.

        Negative *heights* carve valleys. This is the workhorse builder
        for the multi-valley trapping experiments (paper Fig. 3).
        """
        if not (len(centers) == len(heights) == len(widths)):
            raise ConfigurationError(
                "centers, heights and widths must have equal length: "
                f"{len(centers)}, {len(heights)}, {len(widths)}"
            )

        def f(X, Y):
            acc = np.full_like(X, float(base))
            for (cx, cy), h, w in zip(centers, heights, widths):
                if w <= 0:
                    raise ConfigurationError(f"bump width must be positive, got {w}")
                r2 = (X - cx) ** 2 + (Y - cy) ** 2
                acc = acc + h * np.exp(-r2 / (2.0 * w * w))
            return acc

        return cls.from_function(f, shape, extent)

    @classmethod
    def random_terrain(
        cls,
        rng: np.random.Generator,
        roughness: float = 1.0,
        n_bumps: int = 24,
        shape: tuple[int, int] = (129, 129),
        extent: tuple[float, float] = (1.0, 1.0),
    ) -> "HeightField":
        """Band-limited random terrain built from random Gaussian bumps.

        Heights are shifted so the minimum is zero (the paper's potential
        baseline). *roughness* scales bump amplitude.
        """
        if n_bumps <= 0:
            raise ConfigurationError(f"n_bumps must be positive, got {n_bumps}")
        centers = np.column_stack(
            [rng.uniform(0, extent[0], n_bumps), rng.uniform(0, extent[1], n_bumps)]
        )
        heights = rng.uniform(-1.0, 1.0, n_bumps) * roughness
        widths = rng.uniform(0.05, 0.2, n_bumps) * max(extent)
        field = cls.hills(
            [tuple(c) for c in centers], list(heights), list(widths), 0.0, shape, extent
        )
        field.z -= field.z.min()
        return field

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HeightField(shape=({self.nx}, {self.ny}), extent={self.extent}, "
            f"z∈[{self.min_height():.3g}, {self.max_height():.3g}])"
        )
