"""Energy accounting for the particle model (paper §3.3).

The paper tracks three quantities:

* kinetic energy ``E_k = m v² / 2``,
* potential energy ``E_p = m g h``,
* cumulative friction heat ``E_h`` with the identity that heat grows by
  ``µk·m·g`` per unit *horizontal* distance travelled (the paper's
  ``E_h = µk·m·g·d⊥``),

and defines the **potential height** ``h*_t = h_0 − Σ E_h,i/(m·g)`` — the
highest surface point the particle could still reach. Theorem 1 and the
load balancer's per-task flag are both phrased in terms of ``h*``.

:class:`EnergyLedger` maintains these quantities incrementally and exposes
the invariants the property tests assert:

* total mechanical energy never increases,
* mechanical + heat is conserved (up to integrator tolerance),
* the particle's height never exceeds ``h*`` (within tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass
class EnergyLedger:
    """Running energy balance of one particle.

    Parameters
    ----------
    mass, g:
        Particle mass and gravitational acceleration.
    initial_height:
        Surface height at release, ``h_0``. With zero initial speed the
        initial total energy is ``m·g·h_0``.
    initial_speed:
        Release speed (usually 0, as in the paper's scenario).
    """

    mass: float
    g: float
    initial_height: float
    initial_speed: float = 0.0

    def __post_init__(self) -> None:
        if self.mass <= 0:
            raise ConfigurationError(f"mass must be positive, got {self.mass}")
        if self.g <= 0:
            raise ConfigurationError(f"g must be positive, got {self.g}")
        self.heat: float = 0.0

    # -- updates ---------------------------------------------------------

    def add_heat(self, delta: float) -> None:
        """Record friction loss *delta* (must be non-negative)."""
        if delta < -1e-12:
            raise ConfigurationError(f"heat increment must be non-negative, got {delta}")
        self.heat += max(delta, 0.0)

    def add_friction_path(self, mu_k: float, horizontal_distance: float) -> None:
        """Record heat for sliding *horizontal_distance* with friction µk.

        Implements the paper's ``E_h = µk·m·g·d⊥`` identity.
        """
        self.add_heat(mu_k * self.mass * self.g * max(horizontal_distance, 0.0))

    # -- derived quantities -----------------------------------------------

    @property
    def initial_total(self) -> float:
        """Total energy at release: ``m g h0 + m v0²/2``."""
        return self.mass * self.g * self.initial_height + 0.5 * self.mass * self.initial_speed**2

    def total_mechanical(self) -> float:
        """Mechanical energy remaining = initial − heat."""
        return self.initial_total - self.heat

    def potential_height(self) -> float:
        """``h*`` — the highest surface height still reachable.

        Paper §3.3: ``h*_t = h0 − Σ E_h,i / (m g)`` (extended by the
        initial kinetic term when the release speed is nonzero).
        """
        return self.total_mechanical() / (self.mass * self.g)

    def kinetic_at(self, height: float) -> float:
        """Kinetic energy implied at surface *height* by conservation."""
        return self.total_mechanical() - self.mass * self.g * height

    def speed_at(self, height: float) -> float:
        """Speed implied at *height*; 0 if the height is unreachable."""
        ek = self.kinetic_at(height)
        if ek <= 0:
            return 0.0
        return (2.0 * ek / self.mass) ** 0.5

    def can_reach(self, height: float, tol: float = 1e-9) -> bool:
        """Whether a point at *height* is energetically reachable now."""
        return height <= self.potential_height() + tol
