"""Classical particle-and-plane physics model (paper §3).

This subpackage implements, standalone and in continuous space, the
physical system the paper uses as its load-balancing analogy: a point
particle sliding on a bumpy surface under gravity with static and kinetic
friction. It exists for two reasons:

1. It lets us validate the paper's *physics-level* claims (Theorem 1,
   Corollaries 1-3: trapping, escape radius, potential height) directly in
   their native setting, independent of the load-balancing mapping.
2. Its energy ledger is the reference implementation against which the
   discrete load-balancer's potential-height flag (``repro.core.energy``)
   is tested.

Public surface
--------------
:class:`HeightField`
    A bilinear-interpolated surface ``z = f(x, y)`` with analytic builders
    (hills, valleys, random smooth terrain).
:class:`PhysicsParams` / :class:`ParticleState`
    Simulation parameters and the particle's kinematic state.
:class:`ParticleSimulator`
    Time-stepping integrator with the paper's friction model and an exact
    per-step energy ledger.
:mod:`repro.physics.contours`
    Contour extraction, peak, escape radius and the Theorem-1 trapping
    bound.
"""

from repro.physics.constants import PhysicsParams
from repro.physics.contours import (
    Contour,
    contour_at,
    escape_bound_holds,
    escape_radius,
    max_escape_radius_bound,
    peak_height,
)
from repro.physics.energy import EnergyLedger
from repro.physics.heightfield import HeightField
from repro.physics.particle import ParticleState
from repro.physics.dynamics import ParticleSimulator, TrajectoryResult
from repro.physics.multi import MultiParticleSimulator, SwarmResult

__all__ = [
    "MultiParticleSimulator",
    "SwarmResult",
    "PhysicsParams",
    "HeightField",
    "ParticleState",
    "ParticleSimulator",
    "TrajectoryResult",
    "EnergyLedger",
    "Contour",
    "contour_at",
    "peak_height",
    "escape_radius",
    "escape_bound_holds",
    "max_escape_radius_bound",
]
