"""Physical simulation parameters (paper §3.1-3.2).

The paper's particle model has exactly three material constants — the
gravitational acceleration ``g``, the static friction coefficient ``µs``
and the kinetic friction coefficient ``µk`` — plus the numerical knobs of
any explicit integrator (time step, rest thresholds). They are bundled in
one frozen dataclass so a parameter set can be hashed, compared and
reported by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class PhysicsParams:
    """Constants governing a particle-on-surface simulation.

    Attributes
    ----------
    g:
        Gravitational acceleration. Only sets the time scale; the paper's
        trapping results depend on ratios like ``h/µk`` that are
        ``g``-free.
    mu_s:
        Static friction coefficient. A resting particle starts moving only
        where the surface gradient magnitude exceeds ``mu_s`` — this is
        inequality (1) of the paper, ``tan β > µs``.
    mu_k:
        Kinetic friction coefficient. A moving particle loses mechanical
        energy at rate ``µk·m·g`` per unit *horizontal* distance, which is
        the paper's §3.3 identity ``E_h = µk·m·g·d⊥``.
    dt:
        Integrator time step.
    rest_speed:
        Speed below which the particle is considered stationary (and
        static friction applies).
    max_steps:
        Safety bound on the number of integration steps per run.
    stall_steps:
        Number of consecutive near-zero-displacement steps after which
        the particle is declared settled even where the raw slope
        exceeds ``mu_s`` — this recognises stick-slip equilibria such as
        a particle pressed against a domain wall, where the wall's
        normal force (not modelled as a slope) supports it.

    Notes
    -----
    The paper requires ``µk ∝ µs`` in the load-balancing mapping (§4.2);
    the physics layer keeps them independent so the corollaries can be
    probed separately (e.g. Corollary 1 needs ``µs = µk = 0``).
    """

    g: float = 9.81
    mu_s: float = 0.2
    mu_k: float = 0.1
    dt: float = 1e-3
    rest_speed: float = 1e-4
    max_steps: int = 2_000_000
    stall_steps: int = 250

    def __post_init__(self) -> None:
        if self.g <= 0:
            raise ConfigurationError(f"g must be positive, got {self.g}")
        if self.mu_s < 0:
            raise ConfigurationError(f"mu_s must be non-negative, got {self.mu_s}")
        if self.mu_k < 0:
            raise ConfigurationError(f"mu_k must be non-negative, got {self.mu_k}")
        if self.dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {self.dt}")
        if self.rest_speed < 0:
            raise ConfigurationError(f"rest_speed must be non-negative, got {self.rest_speed}")
        if self.max_steps <= 0:
            raise ConfigurationError(f"max_steps must be positive, got {self.max_steps}")
        if self.stall_steps <= 0:
            raise ConfigurationError(f"stall_steps must be positive, got {self.stall_steps}")

    def frictionless(self) -> "PhysicsParams":
        """Copy of these parameters with ``µs = µk = 0`` (Corollary 1 setting)."""
        return replace(self, mu_s=0.0, mu_k=0.0)

    def with_friction(self, mu_s: float, mu_k: float) -> "PhysicsParams":
        """Copy with the given friction coefficients."""
        return replace(self, mu_s=mu_s, mu_k=mu_k)
