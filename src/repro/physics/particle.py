"""Kinematic state of the sliding particle (paper §3.1).

The particle is a point mass constrained to the surface. Its state is its
horizontal position, horizontal velocity and mass; heights and energies
are derived through the :class:`~repro.physics.heightfield.HeightField`
and :class:`~repro.physics.energy.EnergyLedger`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass
class ParticleState:
    """Position/velocity/mass of the particle.

    Attributes
    ----------
    position:
        Horizontal position ``(x, y)``.
    velocity:
        Horizontal velocity ``(vx, vy)``.
    mass:
        The paper maps mass to load quantity; in the physics layer it only
        scales energies (trajectories are mass-independent since every
        force here is proportional to ``m``).
    at_rest:
        True when the particle has settled (speed below threshold and
        slope below the static-friction limit).
    """

    position: np.ndarray
    velocity: np.ndarray = field(default_factory=lambda: np.zeros(2))
    mass: float = 1.0
    at_rest: bool = False

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=np.float64).copy()
        self.velocity = np.asarray(self.velocity, dtype=np.float64).copy()
        if self.position.shape != (2,):
            raise ConfigurationError(f"position must be 2-D, got shape {self.position.shape}")
        if self.velocity.shape != (2,):
            raise ConfigurationError(f"velocity must be 2-D, got shape {self.velocity.shape}")
        if self.mass <= 0:
            raise ConfigurationError(f"mass must be positive, got {self.mass}")

    @property
    def speed(self) -> float:
        """Horizontal speed ``|v|``."""
        return float(np.linalg.norm(self.velocity))

    def kinetic_energy(self) -> float:
        """``E_k = m·v²/2`` (paper §3.3)."""
        return 0.5 * self.mass * self.speed**2

    def copy(self) -> "ParticleState":
        """Deep copy (arrays are duplicated)."""
        return ParticleState(
            position=self.position.copy(),
            velocity=self.velocity.copy(),
            mass=self.mass,
            at_rest=self.at_rest,
        )
