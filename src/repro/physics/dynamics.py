"""Time-stepping dynamics of the particle on the surface (paper §3.1-3.2).

Model
-----
The particle's horizontal position ``p`` evolves under the small-slope
("shallow terrain") equations of motion

.. math::

    \\dot p = v, \\qquad
    \\dot v = -g\\,\\nabla f(p) \\; - \\; \\mu_k\\, g\\, \\hat v
    \\quad (\\text{while } |v| > 0),

with static friction pinning a resting particle wherever the slope
``|∇f| ≤ µs`` (the paper's inequality (1), ``tan β > µs`` for motion).

Why this model: with these equations the mechanical-energy identity is

.. math::

    \\frac{d}{dt}\\Big(\\tfrac12 |v|^2 + g f(p)\\Big) = -\\mu_k g |v|,

i.e. the energy lost to friction per unit *horizontal* path length is
exactly ``µk·m·g`` — which is precisely the paper's §3.3 identity
``E_h = µk·m·g·d⊥`` that Theorem 1 and the potential-height flag are
built on. The full constrained-bead equations would add
``(1+|∇f|²)``-type metric factors that the paper itself discards when it
converts heat to horizontal distance, so the small-slope form is the
faithful reproduction.

Integration is semi-implicit (symplectic) Euler: ``v`` is updated first,
then ``p`` with the new velocity. Additionally, every step projects the
kinetic energy onto the §3.3 ledger (``E_mech ≤ E0 − µk·m·g·path``):
the ledger is the model's ground truth — Theorem 1 and the load
balancer's ``h*`` flag are *defined* by it — so the integrator is never
allowed to hold more energy than the ledger grants. The projection is
purely dissipative. With it, the Corollary-3 path bound
``path ≤ h0/µk`` holds to O(dt) relative tolerance (tested at 1%), and
the potential-height invariant ``h(p) ≤ h*`` to the same order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError
from repro.physics.constants import PhysicsParams
from repro.physics.energy import EnergyLedger
from repro.physics.heightfield import HeightField
from repro.physics.particle import ParticleState


@dataclass
class TrajectoryResult:
    """Outcome of one particle run.

    Attributes
    ----------
    positions:
        ``(n_steps+1, 2)`` array of visited positions (including start).
    heights:
        Surface height at each recorded position.
    path_length:
        Total horizontal arc length travelled.
    settled:
        Whether the particle came to rest before ``max_steps``.
    steps:
        Number of integration steps taken.
    ledger:
        Final :class:`EnergyLedger` (heat, potential height ``h*``).
    final_state:
        Particle state at the end of the run.
    """

    positions: np.ndarray
    heights: np.ndarray
    path_length: float
    settled: bool
    steps: int
    ledger: EnergyLedger
    final_state: ParticleState

    @property
    def start(self) -> np.ndarray:
        return self.positions[0]

    @property
    def end(self) -> np.ndarray:
        return self.positions[-1]

    @property
    def displacement(self) -> float:
        """Straight-line distance from release point to final position."""
        return float(np.linalg.norm(self.end - self.start))

    @property
    def max_height_reached(self) -> float:
        """Highest surface point visited (must stay ≤ h0 within tol)."""
        return float(self.heights.max())


@dataclass
class ParticleSimulator:
    """Integrates a particle over a heightfield with the paper's friction.

    Parameters
    ----------
    field:
        The surface.
    params:
        Physical constants and integrator settings.
    record_every:
        Keep every *record_every*-th position in the trajectory (1 keeps
        all; larger values save memory on long runs). The start and end
        positions are always recorded.
    """

    field: HeightField
    params: PhysicsParams = field(default_factory=PhysicsParams)
    record_every: int = 1

    def run(self, state: ParticleState, max_steps: int | None = None) -> TrajectoryResult:
        """Simulate until the particle rests or *max_steps* elapse.

        The input *state* is not mutated; a copy is evolved. The loop is
        written in scalar (float-only) form using the heightfield's
        scalar fast paths — the integrator runs millions of steps and
        per-step numpy allocation would dominate the runtime (see the
        HPC notes in :mod:`repro.physics.heightfield`).
        """
        p = self.params
        steps_cap = int(max_steps if max_steps is not None else p.max_steps)
        if steps_cap <= 0:
            raise SimulationError(f"max_steps must be positive, got {steps_cap}")

        st = state.copy()
        hf = self.field
        x, y = float(st.position[0]), float(st.position[1])
        vx, vy = float(st.velocity[0]), float(st.velocity[1])
        h0 = hf.height_scalar(x, y)
        ledger = EnergyLedger(
            mass=st.mass, g=p.g, initial_height=h0, initial_speed=math.hypot(vx, vy)
        )

        positions = [(x, y)]
        heights = [h0]
        path_length = 0.0
        heat_distance = 0.0  # accumulated horizontal distance (for the ledger)
        settled = False
        lx, ly = hf.extent
        stride = max(int(self.record_every), 1)
        dt = p.dt
        g = p.g
        mu_s = p.mu_s
        mu_k = p.mu_k
        rest = p.rest_speed
        e0 = g * h0 + 0.5 * (vx * vx + vy * vy)  # total energy at release
        stall = 0  # consecutive near-zero-displacement steps (stick-slip)

        n = 0
        for n in range(1, steps_cap + 1):
            gx, gy = hf.gradient_scalar(x, y)
            speed = math.hypot(vx, vy)

            if speed <= rest:
                # Stationary: static friction holds unless the slope wins
                # (paper inequality (1): motion iff tanβ = |grad| > µs).
                # Even past µs, if kinetic friction would immediately
                # cancel the drive (µk ≥ |grad|), slip is infinitesimal —
                # the particle sticks (Coulomb stick-slip limit).
                gmag = math.hypot(gx, gy)
                if gmag <= mu_s or gmag <= mu_k:
                    st.velocity[:] = 0.0
                    st.at_rest = True
                    settled = True
                    break
                # Slope overcomes both frictions: kinetic regime resumes
                # from (near) rest, friction opposing incipient downhill
                # motion (i.e. pointing up-gradient).
                fdx, fdy = gx / gmag, gy / gmag
            else:
                fdx, fdy = -vx / speed, -vy / speed

            ax = -g * gx + mu_k * g * fdx
            ay = -g * gy + mu_k * g * fdy
            nvx = vx + dt * ax
            nvy = vy + dt * ay

            # Kinetic friction cannot reverse motion within a step: if the
            # velocity flipped direction purely due to friction, clamp to
            # zero instead (prevents friction-driven oscillation at rest).
            if speed > 0 and (nvx * vx + nvy * vy) < 0.0:
                if math.hypot(g * gx, g * gy) * dt < speed:
                    nvx = nvy = 0.0

            vx, vy = nvx, nvy
            nx_ = x + dt * vx
            ny_ = y + dt * vy

            # Reflect at the yard walls (nothing leaves the domain).
            if nx_ < 0.0:
                nx_ = -nx_
                vx = -vx
            elif nx_ > lx:
                nx_ = 2.0 * lx - nx_
                vx = -vx
            if ny_ < 0.0:
                ny_ = -ny_
                vy = -vy
            elif ny_ > ly:
                ny_ = 2.0 * ly - ny_
                vy = -vy
            nx_ = 0.0 if nx_ < 0.0 else (lx if nx_ > lx else nx_)
            ny_ = 0.0 if ny_ < 0.0 else (ly if ny_ > ly else ny_)

            moved = math.hypot(nx_ - x, ny_ - y)
            path_length += moved
            heat_distance += moved
            x, y = nx_, ny_

            # Energy projection: the paper's §3.3 ledger is the model's
            # ground truth (Theorem 1 and the h* flag are defined by it),
            # so the integrator must never hold more mechanical energy
            # than  E0 − µk·g·(distance travelled).  Explicit integrators
            # drift upward by O(dt); project the kinetic term back onto
            # the ledger whenever that happens (purely dissipative, so
            # it cannot inject energy).
            h_now = hf.height_scalar(x, y)
            e_allowed = e0 - mu_k * g * heat_distance
            ke = 0.5 * (vx * vx + vy * vy)
            excess = ke + g * h_now - e_allowed
            if excess > 0.0:
                ke_new = e_allowed - g * h_now
                if ke_new <= 0.0:
                    vx = vy = 0.0
                    if mu_k > 0.0:
                        # Ledger exhausted: the particle holds zero kinetic
                        # budget at its current height, so it can never move
                        # again — this IS Corollary 2's trapping event.
                        # (Frictionless particles only get here via transient
                        # integrator drift and must keep oscillating.)
                        st.at_rest = True
                        settled = True
                        break
                else:
                    scale = math.sqrt(ke_new / ke) if ke > 0 else 0.0
                    vx *= scale
                    vy *= scale

            # Stick-slip detection: a particle making no real progress for
            # stall_steps consecutive steps is in a friction-pinned
            # equilibrium (e.g. pressed against a wall) — declare it
            # settled rather than micro-oscillating forever.
            if moved < rest * dt:
                stall += 1
                if stall >= p.stall_steps:
                    vx = vy = 0.0
                    st.at_rest = True
                    settled = True
                    break
            else:
                stall = 0

            if n % stride == 0:
                positions.append((x, y))
                heights.append(h_now)

        ledger.add_friction_path(mu_k, heat_distance)
        st.position = np.array([x, y])
        st.velocity = np.array([vx, vy])
        if positions[-1] != (x, y) or not settled:
            positions.append((x, y))
            heights.append(hf.height_scalar(x, y))

        return TrajectoryResult(
            positions=np.asarray(positions),
            heights=np.asarray(heights),
            path_length=path_length,
            settled=settled,
            steps=n,
            ledger=ledger,
            final_state=st,
        )

    def release(self, position, mass: float = 1.0, velocity=None) -> TrajectoryResult:
        """Convenience: build a :class:`ParticleState` at *position* and run."""
        vel = np.zeros(2) if velocity is None else np.asarray(velocity, dtype=np.float64)
        return self.run(
            ParticleState(position=np.asarray(position, float), velocity=vel, mass=mass)
        )
