"""Contours, peaks, escape radii and the trapping bounds (paper §3.3).

Definitions reproduced from the paper:

* **Definition 1 (trapped):** a particle is trapped inside contour *c* at
  time *t* if it cannot exit *c* at any later time.
* **Definition 2 (peak):** ``P_c`` is the maximum height of any point of
  *c*'s *rim* — the barrier a particle must climb to leave. (The paper
  says "within c"; operationally the binding quantity in Theorem 1's
  proof is the height that must be climbed to exit, so we expose both the
  rim peak used by the bound and the interior maximum.)
* **Definition 3 (escape radius):** ``r_{c,p}`` is the minimum horizontal
  distance from position *p* to a point outside *c*.
* **Theorem 1:** the particle at potential height ``h*`` is *not* trapped
  in *c* if ``P_c ≤ h* − µk · r_{c,p}`` (escaping along the shortest exit
  costs at most ``µk·g·m·r`` of energy, leaving enough to clear the rim).
* **Corollary 3:** trapping is certain once ``r_{c,p} > h*/µk``.

Discretisation
--------------
A contour is represented as a boolean mask over the heightfield grid: the
connected component (4-neighbour flood fill) of cells with height strictly
below a level ``L`` that contains a seed cell. Its *rim* is the set of
cells adjacent to the region but not in it; the rim peak is the minimum
climb needed to exit is approximated by the *lowest* saddle on the rim —
both the max-rim and min-rim heights are exposed because Theorem 1 as
stated uses the peak (worst case over exit paths) while the dynamics can
exploit the lowest saddle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.physics.heightfield import HeightField


@dataclass(frozen=True)
class Contour:
    """A grid-discretised contour region of a heightfield.

    Attributes
    ----------
    mask:
        Boolean ``(nx, ny)`` array; True for cells inside the contour.
    level:
        The height threshold the flood fill used.
    field:
        The heightfield the contour belongs to.
    """

    mask: np.ndarray
    level: float
    field: HeightField

    @property
    def n_cells(self) -> int:
        """Number of grid cells inside the contour."""
        return int(self.mask.sum())

    @property
    def is_whole_domain(self) -> bool:
        """True when the contour covers every grid cell (nothing outside)."""
        return bool(self.mask.all())

    def interior_peak(self) -> float:
        """Maximum surface height of any cell inside the contour."""
        return float(self.field.z[self.mask].max())

    def floor(self) -> float:
        """Minimum surface height inside the contour (valley bottom)."""
        return float(self.field.z[self.mask].min())

    def contains_point(self, p) -> bool:
        """Whether continuous point *p* falls in a contour cell."""
        i, j = _cell_of(self.field, p)
        return bool(self.mask[i, j])


def _cell_of(field: HeightField, p) -> tuple[int, int]:
    """Nearest grid-node indices for continuous point *p* (clamped)."""
    p = np.asarray(p, dtype=np.float64)
    i = int(round(np.clip(p[0] / field.dx, 0, field.nx - 1)))
    j = int(round(np.clip(p[1] / field.dy, 0, field.ny - 1)))
    return i, j


def contour_at(field: HeightField, p, level: float) -> Contour:
    """Flood-fill the contour below *level* containing point *p*.

    Raises :class:`ConfigurationError` if the seed cell itself is at or
    above *level* (no contour contains the point at that level).
    """
    si, sj = _cell_of(field, p)
    z = field.z
    if z[si, sj] >= level:
        raise ConfigurationError(
            f"seed point has height {z[si, sj]:.4g} >= level {level:.4g}; "
            "no sub-level contour contains it"
        )
    mask = np.zeros_like(z, dtype=bool)
    below = z < level
    q: deque[tuple[int, int]] = deque([(si, sj)])
    mask[si, sj] = True
    nx, ny = z.shape
    while q:
        i, j = q.popleft()
        for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            a, b = i + di, j + dj
            if 0 <= a < nx and 0 <= b < ny and below[a, b] and not mask[a, b]:
                mask[a, b] = True
                q.append((a, b))
    return Contour(mask=mask, level=float(level), field=field)


def rim_mask(contour: Contour) -> np.ndarray:
    """Cells outside the contour that are 4-adjacent to it (the rim)."""
    m = contour.mask
    rim = np.zeros_like(m)
    rim[1:, :] |= m[:-1, :]
    rim[:-1, :] |= m[1:, :]
    rim[:, 1:] |= m[:, :-1]
    rim[:, :-1] |= m[:, 1:]
    rim &= ~m
    return rim


def peak_height(contour: Contour) -> float:
    """``P_c`` — the paper's contour peak (worst-case exit barrier).

    Computed as the maximum height over the contour's rim cells. For a
    contour covering the whole domain there is no rim; the interior
    maximum is returned (nothing to climb — the particle is already
    "outside" every finite barrier).
    """
    rim = rim_mask(contour)
    if not rim.any():
        return contour.interior_peak()
    return float(contour.field.z[rim].max())


def lowest_saddle(contour: Contour) -> float:
    """The lowest rim height — the cheapest exit barrier.

    A particle escapes through the lowest saddle if it can; Theorem 1
    is conservative in using the peak instead.
    """
    rim = rim_mask(contour)
    if not rim.any():
        return contour.interior_peak()
    return float(contour.field.z[rim].min())


def escape_radius(contour: Contour, p) -> float:
    """``r_{c,p}`` — minimum horizontal distance from *p* to outside *c*.

    Definition 3 of the paper. Computed exactly over grid cells: the
    minimum Euclidean distance from *p* to the centre of any cell not in
    the contour. Returns ``inf`` when the contour covers the whole grid.
    """
    if contour.is_whole_domain:
        return float("inf")
    field = contour.field
    outside = ~contour.mask
    ii, jj = np.nonzero(outside)
    px, py = float(p[0]), float(p[1])
    d2 = (ii * field.dx - px) ** 2 + (jj * field.dy - py) ** 2
    return float(np.sqrt(d2.min()))


def escape_bound_holds(
    contour: Contour, p, potential_height: float, mu_k: float
) -> bool:
    """Theorem 1 condition: ``P_c ≤ h* − µk · r_{c,p}``.

    When True the particle is *energetically able* to escape the contour
    (not trapped in the sense of Definition 1, provided it takes a
    shortest exit path, which is the assumption of the paper's proof).
    """
    r = escape_radius(contour, p)
    if np.isinf(r):
        return False
    return peak_height(contour) <= potential_height - mu_k * r


def max_escape_radius_bound(potential_height: float, mu_k: float) -> float:
    """Corollary 3: radius beyond which trapping is certain, ``h*/µk``.

    Any contour whose escape radius at the particle's position exceeds
    this value traps the particle regardless of barrier heights, because
    friction alone exhausts the particle's energy before it can cross.
    Returns ``inf`` for the frictionless case (Corollary 1: never
    trapped by sub-``h0`` barriers).
    """
    if mu_k < 0:
        raise ConfigurationError(f"mu_k must be non-negative, got {mu_k}")
    if mu_k == 0.0:
        return float("inf")
    return potential_height / mu_k
