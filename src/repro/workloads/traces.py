"""Workload traces: recorded arrival schedules, replayable exactly.

A :class:`WorkloadTrace` is an explicit list of arrival events
``(round, node, size)`` plus optional completion events
``(round, task_index)`` — the bridge between synthetic generators and
"replay what production saw" studies. Traces can be

* built programmatically (:meth:`WorkloadTrace.from_events`),
* synthesised from any stochastic process and then *frozen*
  (:func:`record_trace`), so two algorithms face byte-identical churn,
* serialised to/from plain JSON for sharing.

:class:`TraceReplay` adapts a trace to the engine's ``dynamic`` hook
(the same slot :class:`~repro.workloads.dynamic.DynamicWorkload` uses).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.tasks.task import TaskSystem
from repro.workloads.dynamic import DynamicWorkload


@dataclass(frozen=True)
class ArrivalEvent:
    """A task arriving at *round* on *node* with the given *size*."""

    round_index: int
    node: int
    size: float

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ConfigurationError(f"round must be >= 0, got {self.round_index}")
        if self.size <= 0:
            raise ConfigurationError(f"size must be positive, got {self.size}")


@dataclass(frozen=True)
class CompletionEvent:
    """The *arrival_index*-th arrived task completing at *round*."""

    round_index: int
    arrival_index: int

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ConfigurationError(f"round must be >= 0, got {self.round_index}")
        if self.arrival_index < 0:
            raise ConfigurationError(
                f"arrival_index must be >= 0, got {self.arrival_index}"
            )


@dataclass
class WorkloadTrace:
    """An immutable-ish schedule of arrivals and completions."""

    arrivals: list[ArrivalEvent] = field(default_factory=list)
    completions: list[CompletionEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        # completions must reference arrivals that exist and happen later
        n = len(self.arrivals)
        for c in self.completions:
            if c.arrival_index >= n:
                raise ConfigurationError(
                    f"completion references arrival {c.arrival_index} of {n}"
                )
            if c.round_index <= self.arrivals[c.arrival_index].round_index:
                raise ConfigurationError(
                    f"task {c.arrival_index} completes at round {c.round_index} "
                    f"but arrives at {self.arrivals[c.arrival_index].round_index}"
                )

    @property
    def n_arrivals(self) -> int:
        return len(self.arrivals)

    @property
    def horizon(self) -> int:
        """Last round touched by any event (+1 = rounds needed to replay)."""
        last = -1
        for a in self.arrivals:
            last = max(last, a.round_index)
        for c in self.completions:
            last = max(last, c.round_index)
        return last

    @classmethod
    def from_events(
        cls,
        arrivals: list[tuple[int, int, float]],
        completions: list[tuple[int, int]] | None = None,
    ) -> "WorkloadTrace":
        """Build from plain tuples ``(round, node, size)`` / ``(round, idx)``."""
        return cls(
            arrivals=[ArrivalEvent(*a) for a in arrivals],
            completions=[CompletionEvent(*c) for c in (completions or [])],
        )

    # ------------------------------- JSON ------------------------------ #

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(
            {
                "arrivals": [[a.round_index, a.node, a.size] for a in self.arrivals],
                "completions": [
                    [c.round_index, c.arrival_index] for c in self.completions
                ],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "WorkloadTrace":
        """Parse a trace serialised by :meth:`to_json`."""
        try:
            raw = json.loads(text)
            return cls.from_events(
                [(int(r), int(n), float(s)) for r, n, s in raw["arrivals"]],
                [(int(r), int(i)) for r, i in raw.get("completions", [])],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed trace JSON: {exc}") from exc


class TraceReplay:
    """Engine `dynamic` adapter replaying a :class:`WorkloadTrace`.

    Drop-in for :class:`~repro.workloads.dynamic.DynamicWorkload`: call
    :meth:`step` once per round in order. Task ids are assigned by the
    target system; the trace's arrival indices map onto them in order.
    """

    def __init__(self, trace: WorkloadTrace):
        self.trace = trace
        self._by_round_arrivals: dict[int, list[int]] = {}
        for idx, a in enumerate(trace.arrivals):
            self._by_round_arrivals.setdefault(a.round_index, []).append(idx)
        self._by_round_completions: dict[int, list[int]] = {}
        for c in trace.completions:
            self._by_round_completions.setdefault(c.round_index, []).append(
                c.arrival_index
            )
        self._task_of_arrival: dict[int, int] = {}
        self._round = -1

    def step(self, system: TaskSystem) -> tuple[list[int], list[int]]:
        """Apply the next round's events; returns (created, removed) ids."""
        self._round += 1
        r = self._round
        removed: list[int] = []
        for arrival_idx in self._by_round_completions.get(r, []):
            tid = self._task_of_arrival.get(arrival_idx)
            if tid is not None and system.is_alive(tid):
                system.remove_task(tid)
                removed.append(tid)
        created: list[int] = []
        for arrival_idx in self._by_round_arrivals.get(r, []):
            a = self.trace.arrivals[arrival_idx]
            tid = system.add_task(a.size, a.node)
            self._task_of_arrival[arrival_idx] = tid
            created.append(tid)
        return created, removed


def record_trace(
    workload: DynamicWorkload,
    system: TaskSystem,
    rounds: int,
) -> WorkloadTrace:
    """Run *workload* against *system* for *rounds*, freezing its events.

    The system is mutated (the workload really runs); the returned trace
    replays the identical event sequence against any fresh system — the
    tool for algorithm comparisons under identical churn.
    """
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    arrivals: list[tuple[int, int, float]] = []
    completions: list[tuple[int, int]] = []
    id_to_arrival: dict[int, int] = {}
    for r in range(rounds):
        created, removed = workload.step(system)
        for tid in removed:
            if tid in id_to_arrival:
                completions.append((r, id_to_arrival[tid]))
        for tid in created:
            id_to_arrival[tid] = len(arrivals)
            arrivals.append((r, system.location_of(tid), system.load_of(tid)))
    return WorkloadTrace.from_events(arrivals, completions)
