"""Initial load distributions: the starting shape of the load surface.

Each function populates a :class:`~repro.tasks.task.TaskSystem` with
tasks and returns the created ids. The names describe the initial *hill*
shape in the paper's surface picture:

* :func:`single_hotspot` — one towering hill (the canonical gradient-
  model benchmark; a burst of work arrives at one processor).
* :func:`multi_hotspot` — several hills, possibly of different heights
  (tests escape from local minima between them).
* :func:`uniform_random` — rough random terrain.
* :func:`linear_ramp` — a tilted plane (constant gradient everywhere).
* :func:`gaussian_blob` — a smooth hill spread over hop-distance from a
  centre.
* :func:`clustered` — several smooth hills around far-apart centres
  (the blob/multi-hotspot hybrid: lumpy but not spiky terrain).
* :func:`balanced` — flat surface (control: nothing should move).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TaskError
from repro.rng import RngLike, ensure_rng
from repro.tasks.generators import load_sizes
from repro.tasks.task import TaskSystem


def _create(system: TaskSystem, nodes: np.ndarray, sizes: np.ndarray) -> list[int]:
    return [system.add_task(float(s), int(v)) for v, s in zip(nodes, sizes)]


def _far_apart_centers(system: TaskSystem, k: int) -> list[int]:
    """*k* pairwise-far nodes: greedy k-center on hop distances,
    seeded at a peripheral node (shared by :func:`multi_hotspot` and
    :func:`clustered`, so the two "far-apart centres" placements can
    never diverge)."""
    hd = system.topology.hop_distances
    chosen = [int(np.argmax(hd.max(axis=1)))]  # a peripheral node
    while len(chosen) < min(k, system.topology.n_nodes):
        d_to_chosen = hd[:, chosen].min(axis=1)
        chosen.append(int(np.argmax(d_to_chosen)))
    return chosen


def single_hotspot(
    system: TaskSystem,
    n_tasks: int,
    rng: RngLike = None,
    node: int | None = None,
    **size_kwargs,
) -> list[int]:
    """All tasks on one node (defaults to the most central node).

    Centrality = minimum eccentricity under hop distance, so the hotspot
    sits mid-mesh rather than in a corner unless requested.
    """
    rng = ensure_rng(rng)
    topo = system.topology
    if node is None:
        ecc = topo.hop_distances.max(axis=1)
        node = int(np.argmin(ecc))
    sizes = load_sizes(n_tasks, rng, **size_kwargs)
    return _create(system, np.full(n_tasks, node), sizes)


def multi_hotspot(
    system: TaskSystem,
    n_tasks: int,
    rng: RngLike = None,
    nodes: list[int] | None = None,
    n_spots: int = 2,
    weights: list[float] | None = None,
    **size_kwargs,
) -> list[int]:
    """Tasks split across several hotspot nodes.

    When *nodes* is omitted, *n_spots* nodes are chosen to be pairwise
    far apart (greedy k-center on hop distances), which produces the
    multi-valley surface used by the arbiter experiment E8. *weights*
    sets the fraction of tasks per spot (defaults to equal).
    """
    rng = ensure_rng(rng)
    topo = system.topology
    if nodes is None:
        if n_spots < 1:
            raise TaskError(f"n_spots must be >= 1, got {n_spots}")
        nodes = _far_apart_centers(system, n_spots)
    if not nodes:
        raise TaskError("hotspot node list must be non-empty")
    k = len(nodes)
    if weights is None:
        weights = [1.0 / k] * k
    w = np.asarray(weights, dtype=np.float64)
    if w.shape[0] != k or (w < 0).any() or w.sum() <= 0:
        raise TaskError(f"invalid hotspot weights: {weights}")
    w = w / w.sum()
    assignment = rng.choice(k, size=n_tasks, p=w)
    node_arr = np.asarray(nodes, dtype=np.int64)[assignment]
    sizes = load_sizes(n_tasks, rng, **size_kwargs)
    return _create(system, node_arr, sizes)


def uniform_random(
    system: TaskSystem, n_tasks: int, rng: RngLike = None, **size_kwargs
) -> list[int]:
    """Each task lands on a uniformly random node."""
    rng = ensure_rng(rng)
    nodes = rng.integers(0, system.topology.n_nodes, n_tasks)
    sizes = load_sizes(n_tasks, rng, **size_kwargs)
    return _create(system, nodes, sizes)


def linear_ramp(
    system: TaskSystem, n_tasks: int, rng: RngLike = None, axis: int = 0, **size_kwargs
) -> list[int]:
    """Load density increases linearly along one embedding axis.

    Produces a constant-gradient surface: every balancer should transport
    load 'downhill' along the axis.
    """
    rng = ensure_rng(rng)
    topo = system.topology
    x = topo.coords[:, axis]
    span = x.max() - x.min()
    density = 0.05 + (x - x.min()) / span if span > 0 else np.ones_like(x)
    p = density / density.sum()
    nodes = rng.choice(topo.n_nodes, size=n_tasks, p=p)
    sizes = load_sizes(n_tasks, rng, **size_kwargs)
    return _create(system, nodes, sizes)


def gaussian_blob(
    system: TaskSystem,
    n_tasks: int,
    rng: RngLike = None,
    center: int | None = None,
    sigma_hops: float = 2.0,
    **size_kwargs,
) -> list[int]:
    """Load concentrated around *center* with Gaussian falloff in hops."""
    if sigma_hops <= 0:
        raise TaskError(f"sigma_hops must be positive, got {sigma_hops}")
    rng = ensure_rng(rng)
    topo = system.topology
    if center is None:
        ecc = topo.hop_distances.max(axis=1)
        center = int(np.argmin(ecc))
    d = topo.hop_distances[center].astype(np.float64)
    p = np.exp(-0.5 * (d / sigma_hops) ** 2)
    p /= p.sum()
    nodes = rng.choice(topo.n_nodes, size=n_tasks, p=p)
    sizes = load_sizes(n_tasks, rng, **size_kwargs)
    return _create(system, nodes, sizes)


def clustered(
    system: TaskSystem,
    n_tasks: int,
    rng: RngLike = None,
    n_clusters: int = 4,
    sigma_hops: float = 1.5,
    **size_kwargs,
) -> list[int]:
    """Load in *n_clusters* smooth lumps around pairwise-far centres.

    Centres are chosen greedily far apart (k-center on hop distances,
    like :func:`multi_hotspot`); each node's density is the sum of
    Gaussian fall-offs from every centre, so the surface has several
    soft hills rather than single-node spikes.
    """
    if n_clusters < 1:
        raise TaskError(f"n_clusters must be >= 1, got {n_clusters}")
    if sigma_hops <= 0:
        raise TaskError(f"sigma_hops must be positive, got {sigma_hops}")
    rng = ensure_rng(rng)
    topo = system.topology
    centers = _far_apart_centers(system, n_clusters)
    d = topo.hop_distances[centers].astype(np.float64)  # (k, n) hops
    p = np.exp(-0.5 * (d / sigma_hops) ** 2).sum(axis=0)
    p /= p.sum()
    nodes = rng.choice(topo.n_nodes, size=n_tasks, p=p)
    sizes = load_sizes(n_tasks, rng, **size_kwargs)
    return _create(system, nodes, sizes)


def balanced(
    system: TaskSystem, tasks_per_node: int, rng: RngLike = None, **size_kwargs
) -> list[int]:
    """Identical task count per node with constant sizes by default.

    The flat-surface control: with equal sizes nothing exceeds the static
    friction threshold and no balancer should move anything.
    """
    rng = ensure_rng(rng)
    n = system.topology.n_nodes
    size_kwargs.setdefault("distribution", "constant")
    sizes = load_sizes(tasks_per_node * n, rng, **size_kwargs)
    nodes = np.repeat(np.arange(n), tasks_per_node)
    return _create(system, nodes, sizes)
