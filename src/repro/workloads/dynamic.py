"""Dynamic task arrival/departure processes (paper §1).

"The second class of approaches is designed to adapt the distributed
systems where new tasks may enter the system at any time and at any
node." — the raison d'être of dynamic load balancing. The quiescent
assumption under which diffusion's convergence is proved (*no new
workload generated, none completed*) is exactly what this module breaks,
so experiment E10 can measure sustained imbalance under churn.

:class:`DynamicWorkload` injects Poisson task arrivals and geometric
task completions each round. Two subclasses shape the arrival process
over *time*: :class:`DiurnalWorkload` (sinusoidal day/night rate
modulation) and :class:`MovingHotspotWorkload` (the arrival hotspot
re-targets periodically — adversarially onto the currently
least-loaded node, so the balancer's valley keeps becoming the next
hill).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import RngLike, ensure_rng
from repro.tasks.task import TaskSystem


@dataclass
class DynamicWorkload:
    """Round-wise task churn.

    Parameters
    ----------
    arrival_rate:
        Expected number of new tasks per round (Poisson).
    completion_prob:
        Per-task probability of completing in a round (geometric
        lifetime with mean ``1/completion_prob`` rounds).
    arrival_nodes:
        Nodes where arrivals land. ``None`` = uniformly random node
        ("at any node"); a list restricts arrivals to those nodes
        (skewed churn — the hard case).
    mean_size, spread:
        Size distribution of arriving tasks (uniform around the mean).
    rng:
        Seeded generator.
    """

    arrival_rate: float = 1.0
    completion_prob: float = 0.02
    arrival_nodes: list[int] | None = None
    mean_size: float = 1.0
    spread: float = 0.5
    rng: RngLike = None

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ConfigurationError(f"arrival_rate must be >= 0, got {self.arrival_rate}")
        if not 0 <= self.completion_prob <= 1:
            raise ConfigurationError(
                f"completion_prob must be in [0, 1], got {self.completion_prob}"
            )
        if self.mean_size <= 0:
            raise ConfigurationError(f"mean_size must be positive, got {self.mean_size}")
        if not 0 <= self.spread < 1:
            raise ConfigurationError(f"spread must be in [0, 1), got {self.spread}")
        self.rng = ensure_rng(self.rng)
        self._round = 0

    def rate_at(self, round_index: int) -> float:
        """Arrival rate for *round_index* (hook for time-varying churn).

        The base process is stationary; subclasses override this. The
        RNG draw sequence is unchanged when the returned rate equals
        ``arrival_rate``, so the base class behaves exactly as before
        the hook existed.
        """
        return self.arrival_rate

    def step(self, system: TaskSystem) -> tuple[list[int], list[int]]:
        """Apply one round of churn; returns ``(created_ids, removed_ids)``."""
        rng = self.rng
        rate = float(self.rate_at(self._round))
        self._round += 1

        # Completions first (a task created this round cannot complete
        # within the same round).
        removed: list[int] = []
        if self.completion_prob > 0:
            alive = system.alive_ids()
            if alive.shape[0]:
                done = rng.random(alive.shape[0]) < self.completion_prob
                for tid in alive[done]:
                    system.remove_task(int(tid))
                    removed.append(int(tid))

        created: list[int] = []
        n_new = int(rng.poisson(rate)) if rate > 0 else 0
        if n_new:
            n_nodes = system.topology.n_nodes
            if self.arrival_nodes is None:
                nodes = rng.integers(0, n_nodes, n_new)
            else:
                nodes = rng.choice(np.asarray(self.arrival_nodes, dtype=np.int64), n_new)
            lo = self.mean_size * (1 - self.spread)
            hi = self.mean_size * (1 + self.spread)
            sizes = rng.uniform(lo, hi, n_new) if hi > lo else np.full(n_new, lo)
            for node, size in zip(nodes, sizes):
                created.append(system.add_task(float(size), int(node)))
        return created, removed


@dataclass
class DiurnalWorkload(DynamicWorkload):
    """Churn whose arrival rate follows a day/night sinusoid.

    The instantaneous rate at round *r* is
    ``arrival_rate · (1 + amplitude · sin(2π r / period))`` — peak
    "daytime" bursts alternate with quiet "nights", so sustained
    imbalance is periodically created and drained. With
    ``amplitude = 0`` this degenerates exactly to
    :class:`DynamicWorkload`.
    """

    amplitude: float = 0.9
    period: int = 50

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.amplitude <= 1:
            raise ConfigurationError(
                f"amplitude must be in [0, 1], got {self.amplitude}"
            )
        if self.period < 1:
            raise ConfigurationError(f"period must be >= 1, got {self.period}")

    def rate_at(self, round_index: int) -> float:
        phase = 2.0 * np.pi * round_index / self.period
        return max(self.arrival_rate * (1.0 + self.amplitude * np.sin(phase)), 0.0)


@dataclass
class MovingHotspotWorkload(DynamicWorkload):
    """Churn whose arrival hotspot re-targets every *dwell* rounds.

    ``mode="adversarial"`` (default) re-targets onto the node with the
    currently *smallest* load — the worst case for any balancer, since
    the valley it just finished filling becomes the next hill.
    ``mode="walk"`` moves the hotspot to a random neighbor instead
    (spatially correlated drift).
    """

    dwell: int = 20
    mode: str = "adversarial"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.dwell < 1:
            raise ConfigurationError(f"dwell must be >= 1, got {self.dwell}")
        if self.mode not in ("adversarial", "walk"):
            raise ConfigurationError(
                f"mode must be 'adversarial' or 'walk', got {self.mode!r}"
            )

    def _retarget(self, system: TaskSystem) -> None:
        topo = system.topology
        if self.mode == "adversarial":
            target = int(np.argmin(system.node_loads))
        else:
            current = self.arrival_nodes[0] if self.arrival_nodes else None
            if current is None:
                target = int(self.rng.integers(0, topo.n_nodes))
            else:
                neighbors = topo.neighbors(int(current))
                target = int(self.rng.choice(neighbors))
        self.arrival_nodes = [target]

    def step(self, system: TaskSystem) -> tuple[list[int], list[int]]:
        if self._round % self.dwell == 0:
            self._retarget(system)
        return super().step(system)
