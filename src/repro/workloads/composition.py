"""Composable scenarios: orthogonal workload components and their algebra.

The paper's claims are about how the balancer behaves across *settings*
— topologies, load shapes, heterogeneity, churn — so a scenario is data,
not code: a :class:`ScenarioSpec` assembled from five orthogonal,
registry-driven component kinds:

========================  =====================================================
kind                      examples
========================  =====================================================
``topology``              ``mesh`` / ``torus`` / ``hypercube`` / ``random`` / …
``placement``             ``hotspot`` / ``uniform`` / ``clustered`` / ``power-law`` / …
``links``                 ``unit`` / ``jittered`` / ``faulty`` / ``fault-storm``
``heterogeneity``         ``stragglers`` / ``tiered`` node speeds
``dynamics``              ``churn`` / ``bursty`` / ``diurnal`` / ``moving-hotspot`` / ``replay``
========================  =====================================================

Every component owns its typed keyword parameters (unknown keys raise
:class:`~repro.exceptions.ConfigurationError` naming the accepted keys)
and a distinct derived RNG stream, so adding jitter to the links can
never perturb the placement draws.

**Grammar.** Anywhere a scenario name is accepted, a compact composed
string works too::

    mesh:16x16+hotspot+stragglers:frac=0.1+diurnal

Components are joined with ``+``; each is ``name`` or ``name:args``
where *args* is either ``k=v,k=v`` pairs or, for topologies, a
positional shorthand (``16x16``, ``6``). Kinds are inferred from the
component name; at most one component per kind; a topology is required,
placement defaults to ``hotspot`` and links to ``unit``.
:meth:`ScenarioSpec.canonical` renders the unique canonical string form
(sorted keys, normalised values) — the identity the runner's cache
hashes.

**Legacy aliases.** The twelve historical scenario names (and the new
pre-composed ones) are registered through :func:`register_alias` by
:mod:`repro.workloads.scenarios`; an alias maps the legacy flat kwargs
(``side``, ``n_tasks``, …) onto components and builds a bit-for-bit
identical :class:`Scenario` to the constructor it replaced.

**RNG streams.** ``build(seed)`` derives one independent stream per
component kind via :func:`repro.rng.derive`: placement = 0, links = 1,
heterogeneity = 2, dynamics = 3 — exactly the streams the legacy
constructors used, which is what makes alias parity (and therefore
cache-key continuity) possible. Components needing several draws key
sub-streams under their kind (``derive(seed, 3, 1)``), so composed
axes stay pairwise independent; the one exception is the historical
``bursty-arrivals`` *alias*, whose hot-node choice keeps its
pre-composition stream 2 for bit-for-bit parity (see ``_dyn_bursty``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network import builders
from repro.network.links import LinkAttributes
from repro.network.topology import Topology
from repro.rng import RngLike, derive, ensure_rng
from repro.tasks.task import TaskSystem

# Direct module import (not an attribute read on the parent package):
# this module must stay importable while ``repro.workloads``'s own
# __init__ is still executing.
import repro.workloads.distributions as distributions
from repro.workloads.dynamic import (
    DiurnalWorkload,
    DynamicWorkload,
    MovingHotspotWorkload,
)
from repro.workloads.traces import TraceReplay, record_trace

#: component kinds in canonical order (also the build order).
KINDS = ("topology", "placement", "links", "heterogeneity", "dynamics")

#: derived RNG stream key per component kind (legacy-compatible).
STREAMS = {"placement": 0, "links": 1, "heterogeneity": 2, "dynamics": 3}


# --------------------------------------------------------------------- #
# The built object
# --------------------------------------------------------------------- #


@dataclass
class Scenario:
    """One fully-built experimental setting.

    Attributes
    ----------
    name:
        Registered alias this scenario was built from, or the canonical
        composed string.
    topology, links, system:
        The network, its link attributes, and the populated task system.
    task_ids:
        Ids of the initially created tasks.
    node_speeds:
        Optional per-node processing speeds (None = homogeneous). The
        engines use them for the effective metric surface; the event
        engine additionally derives per-node balancing cadences from
        them (a slow node balances less often).
    dynamic:
        Optional workload churn process the engines should drive (None
        = static workload).
    spec:
        The :class:`ScenarioSpec` this scenario was built from (None
        for scenarios assembled by hand).
    """

    name: str
    topology: Topology
    links: LinkAttributes
    system: TaskSystem
    task_ids: list[int] = field(default_factory=list)
    node_speeds: np.ndarray | None = None
    dynamic: DynamicWorkload | None = None
    spec: "ScenarioSpec | None" = None


# --------------------------------------------------------------------- #
# Typed parameters
# --------------------------------------------------------------------- #

_REQUIRED = object()


@dataclass(frozen=True)
class Param:
    """One typed component parameter: default, converter and bounds."""

    default: object = _REQUIRED
    convert: type = float
    lo: float | None = None
    hi: float | None = None
    lo_open: bool = False
    hi_open: bool = False
    choices: tuple[str, ...] | None = None

    @property
    def required(self) -> bool:
        return self.default is _REQUIRED

    def validate(self, owner: str, key: str, value):
        """Convert and range-check *value*; raise ConfigurationError."""
        if value is None:
            return None
        if self.convert is int and isinstance(value, float) and not value.is_integer():
            # int() would silently truncate 4.9 -> 4: a different machine
            # than the one asked for. Typed params reject, not round.
            raise ConfigurationError(
                f"{owner}: parameter {key!r} expects int, got {value!r}"
            )
        try:
            value = self.convert(value)
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"{owner}: parameter {key!r} expects {self.convert.__name__}, "
                f"got {value!r}"
            )
        if isinstance(value, float) and not math.isfinite(value):
            # NaN slips through every < / > bound check; reject at the
            # validation layer instead of crashing later in a worker.
            raise ConfigurationError(
                f"{owner}: parameter {key!r} must be finite, got {value!r}"
            )
        if self.choices is not None and value not in self.choices:
            raise ConfigurationError(
                f"{owner}: parameter {key!r} must be one of "
                f"{sorted(self.choices)}, got {value!r}"
            )
        if self.lo is not None:
            bad = value <= self.lo if self.lo_open else value < self.lo
            if bad:
                op = ">" if self.lo_open else ">="
                raise ConfigurationError(
                    f"{owner}: parameter {key!r} must be {op} {self.lo}, got {value}"
                )
        if self.hi is not None:
            bad = value >= self.hi if self.hi_open else value > self.hi
            if bad:
                op = "<" if self.hi_open else "<="
                raise ConfigurationError(
                    f"{owner}: parameter {key!r} must be {op} {self.hi}, got {value}"
                )
        return value


def _p_int(default=_REQUIRED, lo=1, hi=None, hi_open=False) -> Param:
    return Param(default=default, convert=int, lo=lo, hi=hi, hi_open=hi_open)


def _p_float(default=_REQUIRED, lo=None, hi=None, lo_open=False, hi_open=False) -> Param:
    return Param(
        default=default, convert=float, lo=lo, hi=hi, lo_open=lo_open, hi_open=hi_open
    )


def _p_str(default=_REQUIRED, choices=None) -> Param:
    return Param(default=default, convert=str, choices=choices)


# --------------------------------------------------------------------- #
# Components and their registries
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Component:
    """A registered scenario component: typed params plus a builder.

    ``build``'s signature depends on the kind — see the builder
    functions below. ``positional`` maps a shorthand arity onto
    parameter names (``mesh:16x16`` → ``rows=16, cols=16``);
    ``normalize`` rewrites validated kwargs into a canonical form so
    equivalent specs share one canonical string (and cache key).
    """

    kind: str
    name: str
    summary: str
    params: Mapping[str, Param]
    build: Callable
    positional: Mapping[int, tuple[str, ...]] = field(default_factory=dict)
    normalize: Callable[[dict], dict] | None = None

    def validate(self, kwargs: Mapping) -> dict:
        """Validate *kwargs* against the declared params; return them
        converted (and normalised), defaults *not* filled in."""
        unknown = set(kwargs) - set(self.params)
        if unknown:
            raise ConfigurationError(
                f"unknown parameter(s) {sorted(unknown)} for {self.kind} "
                f"component {self.name!r}; accepted: {sorted(self.params)}"
            )
        out = {
            key: self.params[key].validate(f"{self.kind} {self.name!r}", key, value)
            for key, value in kwargs.items()
        }
        out = {k: v for k, v in out.items() if v is not None}
        if self.normalize is not None:
            out = self.normalize(out)
        # Drop values that equal the parameter default: the spec keeps
        # only what deviates, so `mesh:side=8` and `mesh` are the same
        # spec — one canonical string, one cache entry. (A component
        # default may only change together with a simulation-behaviour
        # version bump, which already invalidates the cache.)
        return {
            k: v for k, v in out.items()
            if self.params[k].required or v != self.params[k].default
        }

    def resolved(self, kwargs: Mapping) -> dict:
        """Validated kwargs with defaults filled in (build-time view)."""
        out = {
            key: param.default
            for key, param in self.params.items()
            if not param.required and param.default is not None
        }
        out.update(self.validate(kwargs))
        missing = [
            key
            for key, param in self.params.items()
            if param.required and key not in out
        ]
        if missing:
            raise ConfigurationError(
                f"{self.kind} component {self.name!r} is missing required "
                f"parameter(s) {sorted(missing)}"
            )
        return out


#: kind -> name -> Component
REGISTRY: dict[str, dict[str, Component]] = {kind: {} for kind in KINDS}
#: flat name -> Component (names are globally unique across kinds)
_BY_NAME: dict[str, Component] = {}


def register_component(component: Component) -> Component:
    """Register *component*; names must be unique across all kinds."""
    if component.kind not in REGISTRY:
        raise ConfigurationError(
            f"unknown component kind {component.kind!r}; kinds: {list(KINDS)}"
        )
    if component.name in _BY_NAME:
        raise ConfigurationError(
            f"component name {component.name!r} is already registered "
            f"(as a {_BY_NAME[component.name].kind} component)"
        )
    REGISTRY[component.kind][component.name] = component
    _BY_NAME[component.name] = component
    return component


def component_names(kind: str | None = None) -> list[str]:
    """Registered component names, optionally restricted to *kind*."""
    if kind is None:
        return sorted(_BY_NAME)
    if kind not in REGISTRY:
        raise ConfigurationError(
            f"unknown component kind {kind!r}; kinds: {list(KINDS)}"
        )
    return sorted(REGISTRY[kind])


def get_component(name: str) -> Component:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario component {name!r}; available: "
            + ", ".join(
                f"{kind}: {sorted(REGISTRY[kind])}" for kind in KINDS if REGISTRY[kind]
            )
        )


# --------------------------------------------------------------------- #
# ComponentSpec / ScenarioSpec
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ComponentSpec:
    """One chosen component plus its (validated, non-default) kwargs."""

    kind: str
    name: str
    kwargs: tuple[tuple[str, object], ...] = ()

    @property
    def component(self) -> Component:
        return _BY_NAME[self.name]

    def kwargs_dict(self) -> dict:
        return dict(self.kwargs)

    def with_kwargs(self, extra: Mapping) -> "ComponentSpec":
        merged = {**self.kwargs_dict(), **extra}
        return make_component(self.name, merged, kind=self.kind)

    def token(self) -> str:
        """Canonical grammar token, e.g. ``stragglers:frac=0.1``."""
        if not self.kwargs:
            return self.name
        args = ",".join(f"{k}={_fmt(v)}" for k, v in sorted(self.kwargs))
        return f"{self.name}:{args}"


def _fmt(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def make_component(
    name: str, kwargs: Mapping | None = None, kind: str | None = None
) -> ComponentSpec:
    """Validated :class:`ComponentSpec` for registered component *name*."""
    comp = get_component(name)
    if kind is not None and comp.kind != kind:
        raise ConfigurationError(
            f"component {name!r} is a {comp.kind} component, not {kind}"
        )
    validated = comp.validate(kwargs or {})
    return ComponentSpec(comp.kind, comp.name, tuple(sorted(validated.items())))


@dataclass(frozen=True)
class ScenarioSpec:
    """A scenario as data: one component per kind, serialisable.

    Build one from the grammar (:func:`parse_scenario`), from parts
    (:meth:`compose`) or from a plain dict (:meth:`from_dict`); realise
    it with :meth:`build`. ``alias`` records the registered name this
    spec was resolved from (``Scenario.name`` keeps legacy names
    stable; the cache key of a bare legacy name is unchanged).
    """

    topology: ComponentSpec
    placement: ComponentSpec
    links: ComponentSpec
    heterogeneity: ComponentSpec | None = None
    dynamics: ComponentSpec | None = None
    alias: str | None = None

    # ------------------------------ assembly -------------------------- #

    @classmethod
    def compose(
        cls,
        topology: str | ComponentSpec,
        placement: str | ComponentSpec = "hotspot",
        links: str | ComponentSpec = "unit",
        heterogeneity: str | ComponentSpec | None = None,
        dynamics: str | ComponentSpec | None = None,
        alias: str | None = None,
    ) -> "ScenarioSpec":
        """Assemble a spec from component names/tokens or ComponentSpecs."""

        def coerce(value, kind):
            if value is None:
                return None
            if isinstance(value, ComponentSpec):
                if value.kind != kind:
                    raise ConfigurationError(
                        f"expected a {kind} component, got {value.kind} "
                        f"component {value.name!r}"
                    )
                return value
            spec = _parse_token(str(value))
            if spec.kind != kind:
                raise ConfigurationError(
                    f"expected a {kind} component, got {spec.kind} "
                    f"component {spec.name!r}"
                )
            return spec

        return cls(
            topology=coerce(topology, "topology"),
            placement=coerce(placement, "placement"),
            links=coerce(links, "links"),
            heterogeneity=coerce(heterogeneity, "heterogeneity"),
            dynamics=coerce(dynamics, "dynamics"),
            alias=alias,
        )

    def components(self) -> list[ComponentSpec]:
        present = [self.topology, self.placement, self.links,
                   self.heterogeneity, self.dynamics]
        return [c for c in present if c is not None]

    # ------------------------------ identity -------------------------- #

    def canonical(self) -> str:
        """The unique canonical grammar string for this composition.

        Components appear in kind order with sorted ``k=v`` kwargs;
        default links (``unit`` with no overrides) and absent
        heterogeneity/dynamics are omitted. Parsing the canonical
        string reproduces this spec exactly (minus the alias tag).
        """
        parts = [self.topology.token(), self.placement.token()]
        if self.links.kwargs or self.links.name != "unit":
            parts.insert(2, self.links.token())
        for comp in (self.heterogeneity, self.dynamics):
            if comp is not None:
                parts.append(comp.token())
        return "+".join(parts)

    def to_dict(self) -> dict:
        """Plain-data form (JSON-ready; inverts via :meth:`from_dict`)."""
        out: dict = {}
        for kind in KINDS:
            comp: ComponentSpec | None = getattr(self, kind)
            if comp is not None:
                out[kind] = {"name": comp.name, **comp.kwargs_dict()}
        if self.alias:
            out["alias"] = self.alias
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        """Rebuild a spec exported with :meth:`to_dict`."""
        parts: dict = {"alias": data.get("alias")}
        for kind in KINDS:
            entry = data.get(kind)
            if entry is None:
                parts[kind] = None
                continue
            entry = dict(entry)
            try:
                name = entry.pop("name")
            except KeyError:
                raise ConfigurationError(
                    f"scenario spec {kind} entry is missing its 'name'"
                )
            parts[kind] = make_component(name, entry, kind=kind)
        if parts.get("topology") is None:
            raise ConfigurationError("scenario spec needs a topology component")
        if parts.get("placement") is None:
            parts["placement"] = make_component("hotspot", {}, kind="placement")
        if parts.get("links") is None:
            parts["links"] = make_component("unit", {}, kind="links")
        return cls(**parts)

    # ------------------------------ overrides ------------------------- #

    def with_overrides(self, kwargs: Mapping) -> "ScenarioSpec":
        """Route flat *kwargs* onto components by accepted-key lookup.

        A key accepted by exactly one present component is routed there;
        a key accepted by several raises (set it inline in the grammar
        instead); a key accepted by none raises with the accepted keys
        per component. Composed specs are deliberately *strict* — the
        ignore-what-you-don't-read tolerance survives only for
        registered legacy names (see :func:`resolve_scenario`), so a
        mistyped or legacy-spelled key (``straggler_frac`` instead of
        ``frac``) can never silently run the default experiment.
        """
        if not kwargs:
            return self
        routed: dict[str, dict] = {}
        comps = self.components()
        for key, value in kwargs.items():
            owners = [c for c in comps if key in c.component.params]
            if len(owners) > 1:
                names = [c.name for c in owners]
                raise ConfigurationError(
                    f"scenario override {key!r} is ambiguous between "
                    f"components {names}; set it inline, e.g. "
                    f"'{owners[0].name}:{key}={_fmt(value)}'"
                )
            if not owners:
                accepted = {c.name: sorted(c.component.params) for c in comps}
                raise ConfigurationError(
                    f"unknown scenario override {key!r}; accepted per "
                    f"component: {accepted}"
                )
            routed.setdefault(owners[0].name, {})[key] = value
        spec = self
        for kind in KINDS:
            comp: ComponentSpec | None = getattr(spec, kind)
            if comp is not None and comp.name in routed:
                spec = replace(spec, **{kind: comp.with_kwargs(routed[comp.name])})
        return spec

    # ------------------------------ build ----------------------------- #

    def build(self, seed: RngLike = 0, topology=None) -> Scenario:
        """Realise the spec into a :class:`Scenario`.

        Each component kind consumes its own derived stream
        (:data:`STREAMS`), so component choices never perturb each
        other's draws and legacy aliases reproduce their historical
        constructors bit for bit.

        *topology* optionally supplies a pre-built topology to use
        instead of building one. Topology construction consumes no seed
        (networks are deterministic given the spec), so passing the
        topology built by the same spec yields a value-identical
        scenario — the replicate-batched engine uses this to share one
        :class:`~repro.network.topology.Topology` object (and its CSR
        adjacency) across all seeds of a batch.
        """
        if topology is not None:
            topo = topology
        else:
            topo = self.topology.component.build(**self.topology.component.resolved(
                self.topology.kwargs_dict()))
        links_comp = self.links.component
        links = links_comp.build(
            topo, derive(seed, STREAMS["links"]),
            **links_comp.resolved(self.links.kwargs_dict()),
        )
        system = TaskSystem(topo)
        placement_comp = self.placement.component
        task_ids = placement_comp.build(
            system, derive(seed, STREAMS["placement"]),
            **placement_comp.resolved(self.placement.kwargs_dict()),
        )
        node_speeds = None
        if self.heterogeneity is not None:
            het = self.heterogeneity.component
            node_speeds = het.build(
                topo, ensure_rng(derive(seed, STREAMS["heterogeneity"])),
                **het.resolved(self.heterogeneity.kwargs_dict()),
            )
        dynamic = None
        if self.dynamics is not None:
            from_legacy_alias = (
                self.alias is not None
                and self.alias in ALIASES
                and ALIASES[self.alias].legacy
            )
            dyn = self.dynamics.component
            dynamic = dyn.build(
                topo, system, seed, _legacy=from_legacy_alias,
                **dyn.resolved(self.dynamics.kwargs_dict()),
            )
        name = self.alias if self.alias else self.canonical()
        return Scenario(
            name, topo, links, system, task_ids,
            node_speeds=node_speeds, dynamic=dynamic, spec=self,
        )


# --------------------------------------------------------------------- #
# Grammar
# --------------------------------------------------------------------- #


def _parse_value(token: str):
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        return token


def _parse_token(token: str) -> ComponentSpec:
    """Parse one grammar token (``name`` or ``name:args``)."""
    token = token.strip()
    if not token:
        raise ConfigurationError("empty scenario component")
    name, _, argstr = token.partition(":")
    comp = get_component(name.strip())
    kwargs: dict = {}
    argstr = argstr.strip()
    if argstr:
        if "=" in argstr:
            for pair in argstr.split(","):
                key, sep, raw = pair.partition("=")
                if not sep or not key.strip():
                    raise ConfigurationError(
                        f"malformed argument {pair!r} in component {token!r}; "
                        "expected k=v[,k=v...]"
                    )
                kwargs[key.strip()] = _parse_value(raw.strip())
        else:
            values = argstr.split("x")
            if any(v.strip() == "" for v in values):
                # '16x' or '8xx16' is a typo, not a smaller request.
                raise ConfigurationError(
                    f"malformed positional shorthand {argstr!r} in "
                    f"component {comp.name!r}"
                )
            keys = comp.positional.get(len(values))
            if keys is None:
                raise ConfigurationError(
                    f"component {comp.name!r} does not accept the positional "
                    f"shorthand {argstr!r}; use k=v form (accepted keys: "
                    f"{sorted(comp.params)})"
                )
            kwargs = dict(zip(keys, (_parse_value(v) for v in values)))
    return make_component(comp.name, kwargs)


def _ensure_aliases() -> None:
    # Alias registration happens at scenarios-module import; the lazy
    # import avoids a cycle (scenarios imports this module at its top).
    import repro.workloads.scenarios  # noqa: F401


#: registered aliases: name -> (accepted legacy kwargs, spec factory)
@dataclass(frozen=True)
class Alias:
    """A registered scenario name mapping flat kwargs onto a spec.

    ``legacy`` marks the pre-composition names: only those keep the
    historical ignore-unread-shared-kwargs tolerance (they have years
    of grids and caches built on it); names registered after the
    composition system validate strictly against ``accepts``.
    """

    name: str
    summary: str
    accepts: frozenset[str]
    make: Callable[[Mapping], ScenarioSpec]
    legacy: bool = False


ALIASES: dict[str, Alias] = {}


def register_alias(
    name: str,
    summary: str,
    accepts: Iterable[str],
    make: Callable[[Mapping], ScenarioSpec],
    legacy: bool = False,
) -> None:
    """Register scenario *name* as an alias for a composed spec."""
    if name in ALIASES:
        raise ConfigurationError(f"scenario alias {name!r} is already registered")
    ALIASES[name] = Alias(name, summary, frozenset(accepts), make, legacy)


def resolve_scenario(name: str, kwargs: Mapping | None = None) -> ScenarioSpec:
    """Resolve a scenario *name* (alias or composed string) to a spec.

    For aliases the legacy kwarg convention applies: keys the alias
    does not read are ignored *if* they belong to the historical shared
    set (``SCENARIO_KWARGS``) — one kwargs dict may serve a whole grid
    — while anything else raises with the alias's accepted keys. For
    composed strings, kwargs are routed per component
    (:meth:`ScenarioSpec.with_overrides`).
    """
    _ensure_aliases()
    kwargs = dict(kwargs or {})
    alias = ALIASES.get(name)
    if alias is not None:
        used = _check_alias_kwargs(alias, kwargs)
        spec = alias.make(used)
        return replace(spec, alias=name)
    spec = parse_scenario(name)
    return spec.with_overrides(kwargs)


def _check_alias_kwargs(alias: Alias, kwargs: Mapping) -> dict:
    """Validate flat kwargs against *alias*; return the keys it reads.

    Legacy aliases tolerate (and ignore) unread keys from the
    historical shared-grid set; post-composition aliases are strict.
    """
    if alias.legacy:
        from repro.workloads.scenarios import SCENARIO_KWARGS

        unknown = set(kwargs) - SCENARIO_KWARGS
        tolerated = SCENARIO_KWARGS - alias.accepts
        if unknown:
            raise ConfigurationError(
                f"unknown kwargs {sorted(unknown)} for scenario "
                f"{alias.name!r}; accepted: {sorted(alias.accepts)} (keys "
                f"from the shared legacy set are tolerated and "
                f"ignored: {sorted(tolerated)})"
            )
    else:
        unknown = set(kwargs) - alias.accepts
        if unknown:
            raise ConfigurationError(
                f"unknown kwargs {sorted(unknown)} for scenario "
                f"{alias.name!r}; accepted: {sorted(alias.accepts)}"
            )
    return {k: v for k, v in kwargs.items() if k in alias.accepts}


def parse_scenario(text: str) -> ScenarioSpec:
    """Parse a scenario string: a registered alias or a composed form.

    Raises :class:`~repro.exceptions.ConfigurationError` on unknown
    names, unknown component parameters, duplicate kinds or a missing
    topology.
    """
    _ensure_aliases()
    text = str(text).strip()
    if not text:
        raise ConfigurationError("empty scenario name")
    alias = ALIASES.get(text)
    if alias is not None:
        return replace(alias.make({}), alias=text)
    if "+" not in text and text.partition(":")[0].strip() not in _BY_NAME:
        raise ConfigurationError(
            f"unknown scenario {text!r}; registered scenarios: "
            f"{sorted(ALIASES)} — or compose components "
            f"(e.g. 'mesh:16x16+hotspot'; see component kinds in "
            f"repro.workloads.composition)"
        )
    chosen: dict[str, ComponentSpec] = {}
    for token in text.split("+"):
        spec = _parse_token(token)
        if spec.kind in chosen:
            raise ConfigurationError(
                f"scenario {text!r} names two {spec.kind} components "
                f"({chosen[spec.kind].name!r} and {spec.name!r})"
            )
        chosen[spec.kind] = spec
    if "topology" not in chosen:
        raise ConfigurationError(
            f"scenario {text!r} needs a topology component; available: "
            f"{component_names('topology')} (or a registered name: "
            f"{sorted(ALIASES)})"
        )
    return ScenarioSpec(
        topology=chosen["topology"],
        placement=chosen.get("placement", make_component("hotspot")),
        links=chosen.get("links", make_component("unit")),
        heterogeneity=chosen.get("heterogeneity"),
        dynamics=chosen.get("dynamics"),
    )


def canonical_scenario_name(name: str, kwargs: Mapping | None = None) -> str:
    """Cache-key identity of a scenario string, in one parse.

    Registered names canonicalise to themselves — the canonical JSON
    (and therefore the cache key) of every pre-composition spec is
    unchanged, so existing caches keep replaying. Composed strings
    canonicalise to their unique canonical grammar form, so equivalent
    spellings share one cache entry.

    When *kwargs* is given (``RunSpec.scenario_kwargs``), the flat
    overrides are validated in the same pass — routing and values —
    but are **not** folded into the returned identity: the runner
    hashes them as a separate spec field.
    """
    _ensure_aliases()
    kwargs = dict(kwargs or {})
    alias = ALIASES.get(name)
    if alias is not None:
        if kwargs:
            alias.make(_check_alias_kwargs(alias, kwargs))  # validates
        return name
    spec = parse_scenario(name)
    if kwargs:
        spec.with_overrides(kwargs)  # validates routing + values
    return spec.canonical()


def compose_scenarios(
    topologies: Sequence[str],
    placements: Sequence[str] = ("hotspot",),
    links: Sequence[str] = ("unit",),
    heterogeneity: Sequence[str | None] = (None,),
    dynamics: Sequence[str | None] = (None,),
) -> list[str]:
    """The scenario algebra: a cross product over component axes.

    Each axis is a sequence of component tokens (``None`` = omit the
    optional kind); the result is the list of canonical composed
    strings in deterministic (topology-major) order, ready to feed
    :func:`repro.runner.spec.expand_grid` — the workload cross product
    as data.
    """
    if not topologies:
        raise ConfigurationError("compose_scenarios needs at least one topology")
    out = []
    for topo in topologies:
        for place in placements or ("hotspot",):
            for link in links or ("unit",):
                for het in heterogeneity or (None,):
                    for dyn in dynamics or (None,):
                        out.append(
                            ScenarioSpec.compose(
                                topo, place, link, het, dyn
                            ).canonical()
                        )
    return out


def describe_components() -> dict[str, list[dict]]:
    """Structured listing of every registered component (CLI `scenarios`)."""
    out: dict[str, list[dict]] = {}
    for kind in KINDS:
        rows = []
        for name in sorted(REGISTRY[kind]):
            comp = REGISTRY[kind][name]
            def show(key: str, p: Param) -> str:
                if p.required or p.default is None:
                    return key
                return f"{key}={_fmt(p.default)}"

            params = ", ".join(show(k, p) for k, p in comp.params.items())
            rows.append({"component": name, "parameters": params or "—",
                         "what": comp.summary})
        out[kind] = rows
    return out


def describe_aliases() -> list[dict]:
    """Structured listing of registered scenario names (CLI `scenarios`)."""
    _ensure_aliases()
    return [
        {
            "scenario": name,
            "composition": ALIASES[name].make({}).canonical(),
            "what": ALIASES[name].summary,
        }
        for name in sorted(ALIASES)
    ]


# --------------------------------------------------------------------- #
# Topology components
# --------------------------------------------------------------------- #


def _norm_square(kw: dict) -> dict:
    # A square grid has one canonical spelling: side=N. A lone rows= or
    # cols= is square too (the missing dimension defaults to the given
    # one at build time). side= together with rows=/cols= is two
    # competing size requests — reject, don't pick one.
    if "side" in kw and ("rows" in kw or "cols" in kw):
        raise ConfigurationError(
            "grid topology takes either side= or rows=/cols=, not both: "
            f"got {sorted(kw)}"
        )
    rows, cols = kw.get("rows"), kw.get("cols")
    square = rows if rows is not None else cols
    if square is not None and (rows or square) == (cols or square):
        kw = dict(kw)
        kw["side"] = square
        kw.pop("rows", None)
        kw.pop("cols", None)
    return kw


def _grid_dims(side, rows, cols) -> tuple[int, int]:
    if rows is None and cols is None:
        return side, side
    if rows is None:
        return cols, cols
    if cols is None:
        return rows, rows
    return rows, cols


def _build_mesh(side=8, rows=None, cols=None) -> Topology:
    return builders.mesh(*_grid_dims(side, rows, cols))


def _build_torus(side=8, rows=None, cols=None) -> Topology:
    return builders.torus(*_grid_dims(side, rows, cols))


register_component(Component(
    kind="topology", name="mesh",
    summary="2-D grid (the paper's height-map substrate)",
    params={"side": _p_int(8), "rows": _p_int(None), "cols": _p_int(None)},
    build=_build_mesh,
    positional={1: ("side",), 2: ("rows", "cols")},
    normalize=_norm_square,
))

register_component(Component(
    kind="topology", name="torus",
    summary="2-D mesh with wraparound links (≥3 per wrapped dimension)",
    params={"side": _p_int(8, lo=3), "rows": _p_int(None, lo=3),
            "cols": _p_int(None, lo=3)},
    build=_build_torus,
    positional={1: ("side",), 2: ("rows", "cols")},
    normalize=_norm_square,
))

register_component(Component(
    kind="topology", name="hypercube",
    summary="binary hypercube, 2^dim nodes",
    params={"dim": _p_int(6)},
    build=lambda dim=6: builders.hypercube(dim),
    positional={1: ("dim",)},
))

register_component(Component(
    kind="topology", name="ring",
    summary="cycle of n nodes",
    params={"n": _p_int(64, lo=3)},
    build=lambda n=64: builders.ring(n),
    positional={1: ("n",)},
))

register_component(Component(
    kind="topology", name="star",
    summary="hub node 0 plus n-1 leaves",
    params={"n": _p_int(64, lo=2)},
    build=lambda n=64: builders.star(n),
    positional={1: ("n",)},
))

register_component(Component(
    kind="topology", name="complete",
    summary="all-pairs LAN model",
    params={"n": _p_int(16, lo=2)},
    build=lambda n=16: builders.complete(n),
    positional={1: ("n",)},
))

register_component(Component(
    kind="topology", name="tree",
    summary="complete branching-ary tree of the given depth",
    params={"branching": _p_int(2), "depth": _p_int(5, lo=0)},
    build=lambda branching=2, depth=5: builders.tree(branching, depth),
    positional={2: ("branching", "depth")},
))

register_component(Component(
    kind="topology", name="kary",
    summary="k-ary n-cube (ring/torus/hypercube family)",
    params={"k": _p_int(4, lo=2), "n": _p_int(3)},
    build=lambda k=4, n=3: builders.kary_ncube(k, n),
    positional={2: ("k", "n")},
))

register_component(Component(
    kind="topology", name="random",
    summary="connected Erdős–Rényi graph (graph_seed fixes the wiring)",
    params={"n_nodes": _p_int(64, lo=2), "avg_degree": _p_float(4.0, lo=0.0),
            "graph_seed": _p_int(1, lo=0)},
    build=lambda n_nodes=64, avg_degree=4.0, graph_seed=1:
        builders.random_connected(n_nodes, avg_degree, seed=graph_seed),
    positional={1: ("n_nodes",)},
))


# --------------------------------------------------------------------- #
# Placement components
# --------------------------------------------------------------------- #

#: shared placement size params: explicit n_tasks wins over the
#: machine-scaled default ``round(load_factor · n_nodes)``. n_tasks=0
#: is allowed — the empty-workload control the legacy constructors
#: accepted; negatives raise.
_SIZE_PARAMS = {
    "n_tasks": _p_int(None, lo=0),
    "load_factor": _p_float(8.0, lo=0.0, lo_open=True),
}


def _n_tasks(system: TaskSystem, n_tasks, load_factor) -> int:
    if n_tasks is not None:
        return int(n_tasks)
    return int(round(load_factor * system.topology.n_nodes))


def _place_hotspot(system, rng, n_tasks=None, load_factor=8.0, node=None):
    return distributions.single_hotspot(
        system, _n_tasks(system, n_tasks, load_factor), rng, node=node
    )


def _place_uniform(system, rng, n_tasks=None, load_factor=8.0):
    return distributions.uniform_random(
        system, _n_tasks(system, n_tasks, load_factor), rng
    )


def _place_two_valleys(system, rng, n_tasks=None, load_factor=8.0):
    return distributions.multi_hotspot(
        system, _n_tasks(system, n_tasks, load_factor), rng,
        n_spots=2, weights=[0.7, 0.3],
    )


def _place_valleys(system, rng, n_tasks=None, load_factor=8.0, n_spots=3):
    return distributions.multi_hotspot(
        system, _n_tasks(system, n_tasks, load_factor), rng, n_spots=n_spots
    )


def _place_ramp(system, rng, n_tasks=None, load_factor=8.0, axis=0):
    return distributions.linear_ramp(
        system, _n_tasks(system, n_tasks, load_factor), rng, axis=axis
    )


def _place_blob(system, rng, n_tasks=None, load_factor=8.0, sigma=2.0):
    return distributions.gaussian_blob(
        system, _n_tasks(system, n_tasks, load_factor), rng, sigma_hops=sigma
    )


def _place_balanced(system, rng, per_node=8):
    return distributions.balanced(system, per_node, rng)


def _place_clustered(system, rng, n_tasks=None, load_factor=8.0,
                     n_clusters=4, sigma=1.5):
    return distributions.clustered(
        system, _n_tasks(system, n_tasks, load_factor), rng,
        n_clusters=n_clusters, sigma_hops=sigma,
    )


def _place_power_law(system, rng, n_tasks=None, load_factor=8.0,
                     alpha=2.2, mean=1.0):
    return distributions.uniform_random(
        system, _n_tasks(system, n_tasks, load_factor), rng,
        distribution="pareto", alpha=alpha, mean=mean,
    )


register_component(Component(
    kind="placement", name="hotspot",
    summary="all tasks on one node (most central unless node= given)",
    params={**_SIZE_PARAMS, "node": _p_int(None, lo=0)},
    build=_place_hotspot,
))

register_component(Component(
    kind="placement", name="uniform",
    summary="each task lands on a uniformly random node",
    params=dict(_SIZE_PARAMS),
    build=_place_uniform,
))

register_component(Component(
    kind="placement", name="two-valleys",
    summary="two far-apart hotspots at a 70/30 split (arbiter benchmark)",
    params=dict(_SIZE_PARAMS),
    build=_place_two_valleys,
))

register_component(Component(
    kind="placement", name="valleys",
    summary="n_spots pairwise-far hotspots, equal weights",
    params={**_SIZE_PARAMS, "n_spots": _p_int(3)},
    build=_place_valleys,
))

register_component(Component(
    kind="placement", name="ramp",
    summary="load density increases linearly along one embedding axis",
    params={**_SIZE_PARAMS, "axis": _p_int(0, lo=0, hi=1)},
    build=_place_ramp,
))

register_component(Component(
    kind="placement", name="blob",
    summary="Gaussian fall-off in hop distance from the centre",
    params={**_SIZE_PARAMS, "sigma": _p_float(2.0, lo=0.0, lo_open=True)},
    build=_place_blob,
))

register_component(Component(
    kind="placement", name="balanced",
    summary="flat control: per_node equal-size tasks everywhere",
    params={"per_node": _p_int(8)},
    build=_place_balanced,
))

register_component(Component(
    kind="placement", name="clustered",
    summary="tasks around n_clusters far-apart centres with hop fall-off",
    params={**_SIZE_PARAMS, "n_clusters": _p_int(4),
            "sigma": _p_float(1.5, lo=0.0, lo_open=True)},
    build=_place_clustered,
))

register_component(Component(
    kind="placement", name="power-law",
    summary="uniform placement, Pareto(alpha) task sizes (heavy tail)",
    params={**_SIZE_PARAMS, "alpha": _p_float(2.2, lo=1.0, lo_open=True),
            "mean": _p_float(1.0, lo=0.0, lo_open=True)},
    build=_place_power_law,
))


# --------------------------------------------------------------------- #
# Link components
# --------------------------------------------------------------------- #


def _links_uniform(topo, rng, bandwidth=1.0, distance=1.0, fault_prob=0.0):
    return LinkAttributes.uniform(
        topo, bandwidth=bandwidth, distance=distance, fault_prob=fault_prob
    )


def _links_jittered(topo, rng, bw_lo=0.5, bw_hi=2.0, dist_lo=0.5, dist_hi=2.0):
    if bw_lo > bw_hi:
        raise ConfigurationError(
            f"links 'jittered': bw_lo must be <= bw_hi, got {bw_lo} > {bw_hi}"
        )
    if dist_lo > dist_hi:
        raise ConfigurationError(
            f"links 'jittered': dist_lo must be <= dist_hi, got "
            f"{dist_lo} > {dist_hi}"
        )
    return LinkAttributes.heterogeneous(
        topo, seed=ensure_rng(rng),
        bandwidth_range=(bw_lo, bw_hi), distance_range=(dist_lo, dist_hi),
    )


def _links_faulty(topo, rng, fault=0.05):
    return LinkAttributes.heterogeneous(
        topo, seed=ensure_rng(rng),
        bandwidth_range=(0.5, 2.0), distance_range=(1.0, 1.0),
        fault_range=(0.0, fault),
    )


def _links_fault_storm(topo, rng, frac=0.1, prob=0.3):
    rng = ensure_rng(rng)
    m = topo.n_edges
    n_storm = max(1, round(frac * m))
    storm = rng.choice(m, size=n_storm, replace=False)
    fault = np.zeros(m)
    fault[storm] = prob
    return LinkAttributes(
        topology=topo, bandwidth=np.ones(m), distance=np.ones(m), fault_prob=fault
    )


register_component(Component(
    kind="links", name="unit",
    summary="homogeneous links (the paper's control configuration)",
    params={"bandwidth": _p_float(1.0, lo=0.0, lo_open=True),
            "distance": _p_float(1.0, lo=0.0, lo_open=True),
            "fault_prob": _p_float(0.0, lo=0.0, hi=1.0, hi_open=True)},
    build=_links_uniform,
))

register_component(Component(
    kind="links", name="jittered",
    summary="per-edge bandwidth/distance drawn uniformly from ranges",
    params={"bw_lo": _p_float(0.5, lo=0.0, lo_open=True),
            "bw_hi": _p_float(2.0, lo=0.0, lo_open=True),
            "dist_lo": _p_float(0.5, lo=0.0, lo_open=True),
            "dist_hi": _p_float(2.0, lo=0.0, lo_open=True)},
    build=_links_jittered,
))

register_component(Component(
    kind="links", name="faulty",
    summary="heterogeneous bandwidth plus per-edge fault probabilities",
    params={"fault": _p_float(0.05, lo=0.0, hi=1.0, hi_open=True)},
    build=_links_faulty,
))

register_component(Component(
    kind="links", name="fault-storm",
    summary="a random fraction of links is storm-prone (high fault prob)",
    params={"frac": _p_float(0.1, lo=0.0, hi=1.0, lo_open=True),
            "prob": _p_float(0.3, lo=0.0, hi=1.0, hi_open=True)},
    build=_links_fault_storm,
))


# --------------------------------------------------------------------- #
# Heterogeneity components (node speeds)
# --------------------------------------------------------------------- #


def _het_stragglers(topo, rng, frac=0.125, slowdown=4.0):
    n_slow = max(1, round(frac * topo.n_nodes))
    slow = rng.choice(topo.n_nodes, size=n_slow, replace=False)
    speeds = np.ones(topo.n_nodes)
    speeds[slow] = 1.0 / slowdown
    return speeds


def _het_tiered(topo, rng, tiers=2, ratio=4.0):
    group = (np.arange(topo.n_nodes) * tiers) // topo.n_nodes
    return ratio ** (-group.astype(np.float64))


register_component(Component(
    kind="heterogeneity", name="stragglers",
    summary="a random fraction of nodes runs 1/slowdown as fast",
    params={"frac": _p_float(0.125, lo=0.0, hi=1.0, lo_open=True, hi_open=True),
            "slowdown": _p_float(4.0, lo=1.0)},
    build=_het_stragglers,
))

register_component(Component(
    kind="heterogeneity", name="tiered",
    summary="deterministic speed tiers: group g runs at ratio^-g",
    params={"tiers": _p_int(2, lo=2), "ratio": _p_float(4.0, lo=1.0, lo_open=True)},
    build=_het_tiered,
))


# --------------------------------------------------------------------- #
# Dynamics components
# --------------------------------------------------------------------- #


def _dyn_churn(topo, system, seed, rate=4.0, completion_prob=0.02,
               mean_size=1.0, spread=0.5, _legacy=False):
    return DynamicWorkload(
        arrival_rate=rate, completion_prob=completion_prob,
        mean_size=mean_size, spread=spread,
        rng=derive(seed, STREAMS["dynamics"]),
    )


def _dyn_bursty(topo, system, seed, rate=8.0, completion_prob=0.05, n_hot=4,
                _legacy=False):
    # The composed path draws the hot-node choice from a dedicated
    # sub-stream of the dynamics stream, so it can never correlate with
    # the heterogeneity stream (stragglers). The historical
    # `bursty-arrivals` alias predates that discipline and must keep
    # drawing from stream 2 for bit-for-bit parity (it never combines
    # with heterogeneity, so the correlation cannot arise there).
    if not 1 <= n_hot <= topo.n_nodes:
        raise ConfigurationError(
            f"n_hot must be in [1, {topo.n_nodes}], got {n_hot}"
        )
    hot_rng = ensure_rng(derive(seed, 2) if _legacy
                         else derive(seed, STREAMS["dynamics"], 1))
    hot = [int(v) for v in hot_rng.choice(topo.n_nodes, size=n_hot, replace=False)]
    return DynamicWorkload(
        arrival_rate=rate, completion_prob=completion_prob,
        arrival_nodes=hot, rng=derive(seed, STREAMS["dynamics"]),
    )


def _dyn_diurnal(topo, system, seed, rate=6.0, amplitude=0.9, period=50,
                 completion_prob=0.05, _legacy=False):
    return DiurnalWorkload(
        arrival_rate=rate, completion_prob=completion_prob,
        amplitude=amplitude, period=period,
        rng=derive(seed, STREAMS["dynamics"]),
    )


def _dyn_moving_hotspot(topo, system, seed, rate=8.0, completion_prob=0.05,
                        dwell=20, mode="adversarial", _legacy=False):
    return MovingHotspotWorkload(
        arrival_rate=rate, completion_prob=completion_prob,
        dwell=dwell, mode=mode,
        rng=derive(seed, STREAMS["dynamics"]),
    )


def _dyn_replay(topo, system, seed, horizon=120, rate=4.0,
                completion_prob=0.02, _legacy=False):
    # Freeze a stochastic churn process into a trace at build time, so
    # every algorithm (and every engine) replays byte-identical events.
    # The recording runs against a throwaway clone of the just-placed
    # system; task ids are sequential from zero in both, so completion
    # draws line up exactly.
    twin = TaskSystem(topo)
    for tid in system.alive_ids():
        twin.add_task(system.load_of(int(tid)), system.location_of(int(tid)))
    workload = DynamicWorkload(
        arrival_rate=rate, completion_prob=completion_prob,
        rng=derive(seed, STREAMS["dynamics"]),
    )
    trace = record_trace(workload, twin, horizon)
    return TraceReplay(trace)


register_component(Component(
    kind="dynamics", name="churn",
    summary="Poisson arrivals anywhere + geometric completions",
    params={"rate": _p_float(4.0, lo=0.0), "completion_prob": _p_float(0.02, lo=0.0, hi=1.0),
            "mean_size": _p_float(1.0, lo=0.0, lo_open=True),
            "spread": _p_float(0.5, lo=0.0, hi=1.0, hi_open=True)},
    build=_dyn_churn,
))

register_component(Component(
    kind="dynamics", name="bursty",
    summary="all arrivals land on n_hot random nodes (sustained imbalance)",
    params={"rate": _p_float(8.0, lo=0.0), "completion_prob": _p_float(0.05, lo=0.0, hi=1.0),
            "n_hot": _p_int(4)},
    build=_dyn_bursty,
))

register_component(Component(
    kind="dynamics", name="diurnal",
    summary="sinusoidal day/night arrival-rate modulation",
    params={"rate": _p_float(6.0, lo=0.0), "amplitude": _p_float(0.9, lo=0.0, hi=1.0),
            "period": _p_int(50), "completion_prob": _p_float(0.05, lo=0.0, hi=1.0)},
    build=_dyn_diurnal,
))

register_component(Component(
    kind="dynamics", name="moving-hotspot",
    summary="arrival hotspot re-targets every dwell rounds "
            "(adversarial: onto the currently least-loaded node)",
    params={"rate": _p_float(8.0, lo=0.0), "completion_prob": _p_float(0.05, lo=0.0, hi=1.0),
            "dwell": _p_int(20), "mode": _p_str("adversarial", choices=("adversarial", "walk"))},
    build=_dyn_moving_hotspot,
))

register_component(Component(
    kind="dynamics", name="replay",
    summary="churn frozen into a trace at build: identical events for "
            "every algorithm and engine",
    params={"horizon": _p_int(120), "rate": _p_float(4.0, lo=0.0),
            "completion_prob": _p_float(0.02, lo=0.0, hi=1.0)},
    build=_dyn_replay,
))
