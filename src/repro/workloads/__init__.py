"""Workload generation (paper §1, §4).

Initial load distributions (*where the hills start*) and dynamic task
arrival/departure processes (*new tasks may enter the system at any time
and at any node* — the paper's motivation for dynamic over static
balancing).
"""

from repro.workloads.distributions import (
    balanced,
    gaussian_blob,
    linear_ramp,
    multi_hotspot,
    single_hotspot,
    uniform_random,
)
from repro.workloads.dynamic import DynamicWorkload
from repro.workloads.scenarios import Scenario, build_scenario, SCENARIOS
from repro.workloads.traces import TraceReplay, WorkloadTrace, record_trace

__all__ = [
    "WorkloadTrace",
    "TraceReplay",
    "record_trace",
    "single_hotspot",
    "multi_hotspot",
    "uniform_random",
    "linear_ramp",
    "gaussian_blob",
    "balanced",
    "DynamicWorkload",
    "Scenario",
    "build_scenario",
    "SCENARIOS",
]
