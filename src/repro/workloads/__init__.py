"""Workload generation (paper §1, §4).

Initial load distributions (*where the hills start*), dynamic task
arrival/departure processes (*new tasks may enter the system at any time
and at any node* — the paper's motivation for dynamic over static
balancing), and the composable scenario layer
(:mod:`repro.workloads.composition`) that assembles topology, placement,
links, heterogeneity and dynamics components into named, serialisable,
cache-addressable settings.
"""

from repro.workloads.distributions import (
    balanced,
    clustered,
    gaussian_blob,
    linear_ramp,
    multi_hotspot,
    single_hotspot,
    uniform_random,
)
from repro.workloads.dynamic import (
    DiurnalWorkload,
    DynamicWorkload,
    MovingHotspotWorkload,
)
from repro.workloads.traces import TraceReplay, WorkloadTrace, record_trace
from repro.workloads.composition import (
    ComponentSpec,
    Scenario,
    ScenarioSpec,
    canonical_scenario_name,
    compose_scenarios,
    parse_scenario,
)
from repro.workloads.scenarios import SCENARIO_KWARGS, SCENARIOS, build_scenario

__all__ = [
    "WorkloadTrace",
    "TraceReplay",
    "record_trace",
    "single_hotspot",
    "multi_hotspot",
    "uniform_random",
    "linear_ramp",
    "gaussian_blob",
    "clustered",
    "balanced",
    "DynamicWorkload",
    "DiurnalWorkload",
    "MovingHotspotWorkload",
    "Scenario",
    "ScenarioSpec",
    "ComponentSpec",
    "parse_scenario",
    "canonical_scenario_name",
    "compose_scenarios",
    "build_scenario",
    "SCENARIOS",
    "SCENARIO_KWARGS",
]
