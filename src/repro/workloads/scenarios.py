"""Named end-to-end scenarios used by examples, tests and benchmarks.

A :class:`Scenario` bundles a topology, link attributes and an initial
workload into one reproducible object, so every experiment names its
setting instead of re-rolling bespoke setup code. ``build_scenario`` is
the single entry point; it accepts

* a **registered name** from :data:`SCENARIOS` (the twelve historical
  names plus the pre-composed additions below), or
* a **composed string** in the component grammar of
  :mod:`repro.workloads.composition`, e.g.
  ``"mesh:16x16+hotspot+stragglers:frac=0.1+diurnal"``.

Every registered name is an *alias* for a
:class:`~repro.workloads.composition.ScenarioSpec`: the legacy flat
kwargs (``side``, ``n_tasks``, …) are mapped onto the spec's
components, and the alias builds a **bit-for-bit identical**
``Scenario`` to the hand-written constructor it replaced (same derived
RNG streams, same defaults) — which keeps result-cache keys of bare
legacy names valid across the refactor.

Legacy kwarg convention (deprecation shim): the twelve *historical*
names silently ignore keys from the shared set :data:`SCENARIO_KWARGS`
that they do not read, so one kwargs dict can still serve a mixed grid
(``side`` for meshes, ``dim`` for hypercubes). Everything else is
strict: names registered after the composition system validate kwargs
against their accepted keys, and composed strings validate per
component — unknown keys raise with the accepted keys listed.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.rng import RngLike
from repro.workloads.composition import (
    ALIASES,
    Scenario,
    ScenarioSpec,
    make_component,
    register_alias,
    resolve_scenario,
)

__all__ = ["Scenario", "SCENARIOS", "SCENARIO_KWARGS", "build_scenario"]


def _c(name: str, **kwargs) -> object:
    """Component spec with ``None``-valued kwargs dropped (readability)."""
    return make_component(name, {k: v for k, v in kwargs.items() if v is not None})


# --------------------------------------------------------------------- #
# The twelve historical scenarios, as alias -> spec mappings.
#
# Each `make` receives only the legacy kwargs it declared in `accepts`
# and must reproduce the defaults of the retired hand-written
# constructor exactly (e.g. "8 tasks per node" == load_factor 8.0, the
# placement default). Parity is locked by
# tests/workloads/test_scenario_parity.py.
# --------------------------------------------------------------------- #


def _mesh_hotspot(kw: Mapping) -> ScenarioSpec:
    return ScenarioSpec.compose(
        _c("mesh", side=kw.get("side", 8)),
        _c("hotspot", n_tasks=kw.get("n_tasks")),
    )


def _torus_hotspot(kw: Mapping) -> ScenarioSpec:
    return ScenarioSpec.compose(
        _c("torus", side=kw.get("side", 8)),
        _c("hotspot", n_tasks=kw.get("n_tasks")),
    )


def _hypercube_hotspot(kw: Mapping) -> ScenarioSpec:
    return ScenarioSpec.compose(
        _c("hypercube", dim=kw.get("dim", 6)),
        _c("hotspot", n_tasks=kw.get("n_tasks")),
    )


def _mesh_random(kw: Mapping) -> ScenarioSpec:
    return ScenarioSpec.compose(
        _c("mesh", side=kw.get("side", 8)),
        _c("uniform", n_tasks=kw.get("n_tasks")),
    )


def _mesh_two_valleys(kw: Mapping) -> ScenarioSpec:
    return ScenarioSpec.compose(
        _c("mesh", side=kw.get("side", 8)),
        _c("two-valleys", n_tasks=kw.get("n_tasks")),
    )


def _mesh_faulty(kw: Mapping) -> ScenarioSpec:
    return ScenarioSpec.compose(
        _c("mesh", side=kw.get("side", 8)),
        _c("hotspot", n_tasks=kw.get("n_tasks")),
        _c("faulty", fault=kw.get("fault_prob")),
    )


def _random_hotspot(kw: Mapping) -> ScenarioSpec:
    return ScenarioSpec.compose(
        _c(
            "random",
            n_nodes=kw.get("n_nodes"),
            avg_degree=kw.get("avg_degree"),
            graph_seed=kw.get("graph_seed"),
        ),
        _c("hotspot", n_tasks=kw.get("n_tasks")),
    )


def _straggler(kw: Mapping) -> ScenarioSpec:
    """Hotspot on a torus where a few nodes run slow (paper's
    heterogeneity concern, the async engine's bread and butter: slow
    nodes also *balance* less often under the event engine)."""
    return ScenarioSpec.compose(
        _c("torus", side=kw.get("side", 8)),
        _c("hotspot", n_tasks=kw.get("n_tasks")),
        heterogeneity=_c(
            "stragglers",
            frac=kw.get("straggler_frac"),
            slowdown=kw.get("straggler_slowdown"),
        ),
    )


def _bursty_arrivals(kw: Mapping) -> ScenarioSpec:
    """Light uniform start, then churn whose arrivals all land on a few
    hot nodes — the sustained-imbalance regime where balancing quality
    is throughput, not convergence."""
    side = kw.get("side", 8)
    placement = (
        _c("uniform", n_tasks=kw["n_tasks"])
        if "n_tasks" in kw
        else _c("uniform", load_factor=2.0)
    )
    return ScenarioSpec.compose(
        _c("mesh", side=side),
        placement,
        dynamics=_c(
            "bursty",
            rate=kw.get("arrival_rate"),
            completion_prob=kw.get("completion_prob"),
            n_hot=kw.get("n_hot"),
        ),
    )


def _torus_32x32(kw: Mapping) -> ScenarioSpec:
    """Large-N fixture: 1024-node torus hotspot (the scale at which the
    vectorised ``rounds-fast`` engine starts to pay)."""
    return ScenarioSpec.compose(
        _c("torus", side=32), _c("hotspot", n_tasks=kw.get("n_tasks"))
    )


def _mesh_4096(kw: Mapping) -> ScenarioSpec:
    """Large-N fixture: 4096-node mesh under a uniform random workload."""
    return ScenarioSpec.compose(
        _c("mesh", side=64), _c("uniform", n_tasks=kw.get("n_tasks"))
    )


def _hotspot_scaled(kw: Mapping) -> ScenarioSpec:
    """Mesh hotspot whose task count scales with the machine:
    ``n_tasks = load_factor · side²`` unless given explicitly. One name,
    any N — the scenario behind the ``bench_perf`` scaling curve."""
    return ScenarioSpec.compose(
        _c("mesh", side=kw.get("side", 32)),
        _c(
            "hotspot",
            n_tasks=kw.get("n_tasks"),
            load_factor=kw.get("load_factor", 16.0),
        ),
    )


# --------------------------------------------------------------------- #
# New pre-composed scenarios (each also reachable through the grammar).
# --------------------------------------------------------------------- #


def _diurnal(kw: Mapping) -> ScenarioSpec:
    return ScenarioSpec.compose(
        _c("mesh", side=kw.get("side", 8)),
        _c("uniform", n_tasks=kw.get("n_tasks")),
        dynamics=_c("diurnal"),
    )


def _moving_hotspot(kw: Mapping) -> ScenarioSpec:
    return ScenarioSpec.compose(
        _c("torus", side=kw.get("side", 8)),
        _c("uniform", n_tasks=kw.get("n_tasks")),
        dynamics=_c("moving-hotspot"),
    )


def _power_law(kw: Mapping) -> ScenarioSpec:
    return ScenarioSpec.compose(
        _c("mesh", side=kw.get("side", 8)),
        _c("power-law", n_tasks=kw.get("n_tasks")),
    )


def _clustered(kw: Mapping) -> ScenarioSpec:
    return ScenarioSpec.compose(
        _c("mesh", side=kw.get("side", 8)),
        _c("clustered", n_tasks=kw.get("n_tasks")),
    )


def _fault_storm(kw: Mapping) -> ScenarioSpec:
    return ScenarioSpec.compose(
        _c("torus", side=kw.get("side", 8)),
        _c("hotspot", n_tasks=kw.get("n_tasks")),
        _c("fault-storm"),
    )


def _trace_replay(kw: Mapping) -> ScenarioSpec:
    return ScenarioSpec.compose(
        _c("mesh", side=kw.get("side", 8)),
        _c("uniform", n_tasks=kw.get("n_tasks")),
        dynamics=_c("replay"),
    )


_SIZE = ("side", "n_tasks")

#: the twelve pre-composition names keep the historical shared-kwargs
#: tolerance (legacy=True); everything registered later is strict.
for _name, _summary, _accepts, _make, _legacy in (
    ("mesh-hotspot", "one towering hill mid-mesh", _SIZE, _mesh_hotspot, True),
    ("torus-hotspot", "the same hill with wraparound links", _SIZE,
     _torus_hotspot, True),
    ("hypercube-hotspot", "hotspot on a binary hypercube",
     ("dim", "n_tasks"), _hypercube_hotspot, True),
    ("mesh-random", "rough random terrain", _SIZE, _mesh_random, True),
    ("mesh-two-valleys", "two hills at a 70/30 split (arbiter test)",
     _SIZE, _mesh_two_valleys, True),
    ("mesh-faulty", "hotspot over heterogeneous, fault-prone links",
     ("side", "n_tasks", "fault_prob"), _mesh_faulty, True),
    ("random-hotspot", "hotspot on a random connected graph",
     ("n_nodes", "avg_degree", "graph_seed", "n_tasks"), _random_hotspot, True),
    ("straggler", "torus hotspot with a slow minority of nodes",
     ("side", "n_tasks", "straggler_frac", "straggler_slowdown"),
     _straggler, True),
    ("bursty-arrivals", "skewed churn onto a few hot nodes",
     ("side", "n_tasks", "arrival_rate", "completion_prob", "n_hot"),
     _bursty_arrivals, True),
    ("torus-32x32", "1024-node torus hotspot (fast-path fixture)",
     ("n_tasks",), _torus_32x32, True),
    ("mesh-4096", "4096-node mesh, uniform workload (fast-path fixture)",
     ("n_tasks",), _mesh_4096, True),
    ("hotspot-scaled", "mesh hotspot scaling as load_factor·side²",
     ("side", "load_factor", "n_tasks"), _hotspot_scaled, True),
    ("diurnal", "uniform start, day/night sinusoidal churn", _SIZE,
     _diurnal, False),
    ("moving-hotspot", "arrival hotspot re-targets the emptiest node",
     _SIZE, _moving_hotspot, False),
    ("power-law", "uniform placement, Pareto heavy-tail task sizes",
     _SIZE, _power_law, False),
    ("clustered", "several soft load lumps around far-apart centres",
     _SIZE, _clustered, False),
    ("fault-storm", "torus hotspot where 10% of links are storm-prone",
     _SIZE, _fault_storm, False),
    ("trace-replay", "churn frozen into a trace, replayed identically",
     _SIZE, _trace_replay, False),
):
    register_alias(_name, _summary, _accepts, _make, legacy=_legacy)


def _registry_entry(name: str) -> Callable[..., Scenario]:
    def build(seed: RngLike = 0, **kwargs) -> Scenario:
        return build_scenario(name, seed, **kwargs)

    build.__name__ = f"build_{name.replace('-', '_')}"
    build.__doc__ = ALIASES[name].summary
    return build


#: registered scenario names -> zero-config builders (kept as a dict for
#: backward compatibility; the authoritative registry is
#: ``composition.ALIASES``).
SCENARIOS: dict[str, Callable[..., Scenario]] = {
    name: _registry_entry(name) for name in ALIASES
}

#: the historical shared kwarg set (deprecation shim). Aliases ignore
#: keys from this set that they do not read — one kwargs dict may serve
#: a whole grid — while anything outside it raises. New code should
#: prefer composed strings, whose kwargs are validated per component.
SCENARIO_KWARGS = frozenset(
    {
        "side", "dim", "n_tasks", "fault_prob", "n_nodes", "avg_degree",
        "graph_seed", "straggler_frac", "straggler_slowdown",
        "arrival_rate", "completion_prob", "n_hot", "load_factor",
    }
)


def build_scenario(
    name: str, seed: RngLike = 0, topology=None, **kwargs
) -> Scenario:
    """Build a scenario by registered *name* or composed string.

    Extra keyword arguments override component parameters (e.g.
    ``side=16``, ``n_tasks=2048``); see the module docstring for how
    they are routed and validated. *topology* optionally reuses a
    pre-built topology (see :meth:`ScenarioSpec.build`) — replicate
    batching shares one topology object across the seeds of a batch.
    """
    return resolve_scenario(name, kwargs).build(seed, topology=topology)
