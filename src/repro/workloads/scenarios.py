"""Named end-to-end scenarios used by examples, tests and benchmarks.

A :class:`Scenario` bundles a topology, link attributes and an initial
workload into one reproducible object, so every experiment names its
setting instead of re-rolling bespoke setup code. ``build_scenario`` is
the single entry point; the registry :data:`SCENARIOS` maps names to
constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network import builders
from repro.network.links import LinkAttributes
from repro.network.topology import Topology
from repro.rng import RngLike, derive, ensure_rng
from repro.tasks.task import TaskSystem
from repro.workloads import distributions
from repro.workloads.dynamic import DynamicWorkload


@dataclass
class Scenario:
    """One fully-built experimental setting.

    Attributes
    ----------
    name:
        Registry key this scenario was built from.
    topology, links, system:
        The network, its link attributes, and the populated task system.
    task_ids:
        Ids of the initially created tasks.
    node_speeds:
        Optional per-node processing speeds (None = homogeneous). The
        engines use them for the effective metric surface; the event
        engine additionally derives per-node balancing cadences from
        them (a slow node balances less often).
    dynamic:
        Optional workload churn process the engines should drive (None
        = static workload).
    """

    name: str
    topology: Topology
    links: LinkAttributes
    system: TaskSystem
    task_ids: list[int] = field(default_factory=list)
    node_speeds: np.ndarray | None = None
    dynamic: DynamicWorkload | None = None


def _mesh_hotspot(seed: RngLike, **kw) -> Scenario:
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    topo = builders.mesh(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("mesh-hotspot", topo, links, system, ids)


def _torus_hotspot(seed: RngLike, **kw) -> Scenario:
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    topo = builders.torus(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("torus-hotspot", topo, links, system, ids)


def _hypercube_hotspot(seed: RngLike, **kw) -> Scenario:
    dim = int(kw.get("dim", 6))
    n_tasks = int(kw.get("n_tasks", 8 * (1 << dim)))
    topo = builders.hypercube(dim)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("hypercube-hotspot", topo, links, system, ids)


def _mesh_random(seed: RngLike, **kw) -> Scenario:
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    topo = builders.mesh(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.uniform_random(system, n_tasks, derive(seed, 0))
    return Scenario("mesh-random", topo, links, system, ids)


def _mesh_two_valleys(seed: RngLike, **kw) -> Scenario:
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    topo = builders.mesh(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.multi_hotspot(
        system, n_tasks, derive(seed, 0), n_spots=2, weights=[0.7, 0.3]
    )
    return Scenario("mesh-two-valleys", topo, links, system, ids)


def _mesh_faulty(seed: RngLike, **kw) -> Scenario:
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    fault = float(kw.get("fault_prob", 0.05))
    topo = builders.mesh(side, side)
    rng = ensure_rng(derive(seed, 1))
    links = LinkAttributes.heterogeneous(
        topo,
        seed=rng,
        bandwidth_range=(0.5, 2.0),
        distance_range=(1.0, 1.0),
        fault_range=(0.0, fault),
    )
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("mesh-faulty", topo, links, system, ids)


def _random_hotspot(seed: RngLike, **kw) -> Scenario:
    n_nodes = int(kw.get("n_nodes", 64))
    avg_degree = float(kw.get("avg_degree", 4.0))
    graph_seed = int(kw.get("graph_seed", 1))
    n_tasks = int(kw.get("n_tasks", 8 * n_nodes))
    topo = builders.random_connected(n_nodes, avg_degree, seed=graph_seed)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("random-hotspot", topo, links, system, ids)


def _straggler(seed: RngLike, **kw) -> Scenario:
    """Hotspot on a torus where a few nodes run slow (paper's
    heterogeneity concern, the async engine's bread and butter: slow
    nodes also *balance* less often under the event engine)."""
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    frac = float(kw.get("straggler_frac", 0.125))
    slowdown = float(kw.get("straggler_slowdown", 4.0))
    if not 0 < frac < 1:
        raise ConfigurationError(f"straggler_frac must be in (0, 1), got {frac}")
    if slowdown < 1:
        raise ConfigurationError(
            f"straggler_slowdown must be >= 1, got {slowdown}"
        )
    topo = builders.torus(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    rng = ensure_rng(derive(seed, 2))
    n_slow = max(1, round(frac * topo.n_nodes))
    slow = rng.choice(topo.n_nodes, size=n_slow, replace=False)
    speeds = np.ones(topo.n_nodes)
    speeds[slow] = 1.0 / slowdown
    return Scenario("straggler", topo, links, system, ids, node_speeds=speeds)


def _bursty_arrivals(seed: RngLike, **kw) -> Scenario:
    """Light uniform start, then churn whose arrivals all land on a few
    hot nodes — the sustained-imbalance regime where balancing quality
    is throughput, not convergence."""
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 2 * side * side))
    arrival_rate = float(kw.get("arrival_rate", 8.0))
    completion_prob = float(kw.get("completion_prob", 0.05))
    n_hot = int(kw.get("n_hot", 4))
    topo = builders.mesh(side, side)
    if not 1 <= n_hot <= topo.n_nodes:
        raise ConfigurationError(
            f"n_hot must be in [1, {topo.n_nodes}], got {n_hot}"
        )
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.uniform_random(system, n_tasks, derive(seed, 0))
    hot_rng = ensure_rng(derive(seed, 2))
    hot = [int(v) for v in hot_rng.choice(topo.n_nodes, size=n_hot, replace=False)]
    dynamic = DynamicWorkload(
        arrival_rate=arrival_rate,
        completion_prob=completion_prob,
        arrival_nodes=hot,
        rng=derive(seed, 3),
    )
    return Scenario("bursty-arrivals", topo, links, system, ids, dynamic=dynamic)


def _torus_32x32(seed: RngLike, **kw) -> Scenario:
    """Large-N fixture: 1024-node torus hotspot (the scale at which the
    vectorised ``rounds-fast`` engine starts to pay; Eibl & Rüde's point
    that balancing studies only become informative at scale)."""
    n_tasks = int(kw.get("n_tasks", 8 * 32 * 32))
    topo = builders.torus(32, 32)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("torus-32x32", topo, links, system, ids)


def _mesh_4096(seed: RngLike, **kw) -> Scenario:
    """Large-N fixture: 4096-node mesh under a uniform random workload —
    the every-node-occupied regime that makes the scalar Phase-B sweep
    O(N) per round and is the fast path's best case."""
    n_tasks = int(kw.get("n_tasks", 8 * 64 * 64))
    topo = builders.mesh(64, 64)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.uniform_random(system, n_tasks, derive(seed, 0))
    return Scenario("mesh-4096", topo, links, system, ids)


def _hotspot_scaled(seed: RngLike, **kw) -> Scenario:
    """Mesh hotspot whose task count scales with the machine:
    ``n_tasks = load_factor · side²`` unless given explicitly. One name,
    any N — the scenario behind the ``bench_perf`` scaling curve."""
    side = int(kw.get("side", 32))
    factor = float(kw.get("load_factor", 16.0))
    if factor <= 0:
        raise ConfigurationError(f"load_factor must be positive, got {factor}")
    n_tasks = int(kw.get("n_tasks", round(factor * side * side)))
    topo = builders.mesh(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("hotspot-scaled", topo, links, system, ids)


SCENARIOS: dict[str, Callable[..., Scenario]] = {
    "mesh-hotspot": _mesh_hotspot,
    "torus-hotspot": _torus_hotspot,
    "hypercube-hotspot": _hypercube_hotspot,
    "mesh-random": _mesh_random,
    "mesh-two-valleys": _mesh_two_valleys,
    "mesh-faulty": _mesh_faulty,
    "random-hotspot": _random_hotspot,
    "straggler": _straggler,
    "bursty-arrivals": _bursty_arrivals,
    "torus-32x32": _torus_32x32,
    "mesh-4096": _mesh_4096,
    "hotspot-scaled": _hotspot_scaled,
}

#: every kwarg some scenario constructor reads. Constructors ignore
#: keys they don't use (so one kwargs dict can be shared across a
#: grid of different scenarios), which makes typos silent — callers
#: that accept user-supplied kwargs (e.g. ``repro.runner.RunSpec``)
#: validate against this set to catch them.
SCENARIO_KWARGS = frozenset(
    {
        "side", "dim", "n_tasks", "fault_prob", "n_nodes", "avg_degree",
        "graph_seed", "straggler_frac", "straggler_slowdown",
        "arrival_rate", "completion_prob", "n_hot", "load_factor",
    }
)


def build_scenario(name: str, seed: RngLike = 0, **kwargs) -> Scenario:
    """Build a registered scenario by *name* (see :data:`SCENARIOS`).

    Extra keyword arguments override scenario-specific sizes (e.g.
    ``side=16``, ``n_tasks=2048``).
    """
    try:
        ctor = SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        )
    return ctor(seed, **kwargs)
