"""Named end-to-end scenarios used by examples, tests and benchmarks.

A :class:`Scenario` bundles a topology, link attributes and an initial
workload into one reproducible object, so every experiment names its
setting instead of re-rolling bespoke setup code. ``build_scenario`` is
the single entry point; the registry :data:`SCENARIOS` maps names to
constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ConfigurationError
from repro.network import builders
from repro.network.links import LinkAttributes
from repro.network.topology import Topology
from repro.rng import RngLike, derive, ensure_rng
from repro.tasks.task import TaskSystem
from repro.workloads import distributions


@dataclass
class Scenario:
    """One fully-built experimental setting.

    Attributes
    ----------
    name:
        Registry key this scenario was built from.
    topology, links, system:
        The network, its link attributes, and the populated task system.
    task_ids:
        Ids of the initially created tasks.
    """

    name: str
    topology: Topology
    links: LinkAttributes
    system: TaskSystem
    task_ids: list[int] = field(default_factory=list)


def _mesh_hotspot(seed: RngLike, **kw) -> Scenario:
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    topo = builders.mesh(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("mesh-hotspot", topo, links, system, ids)


def _torus_hotspot(seed: RngLike, **kw) -> Scenario:
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    topo = builders.torus(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("torus-hotspot", topo, links, system, ids)


def _hypercube_hotspot(seed: RngLike, **kw) -> Scenario:
    dim = int(kw.get("dim", 6))
    n_tasks = int(kw.get("n_tasks", 8 * (1 << dim)))
    topo = builders.hypercube(dim)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("hypercube-hotspot", topo, links, system, ids)


def _mesh_random(seed: RngLike, **kw) -> Scenario:
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    topo = builders.mesh(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.uniform_random(system, n_tasks, derive(seed, 0))
    return Scenario("mesh-random", topo, links, system, ids)


def _mesh_two_valleys(seed: RngLike, **kw) -> Scenario:
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    topo = builders.mesh(side, side)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.multi_hotspot(
        system, n_tasks, derive(seed, 0), n_spots=2, weights=[0.7, 0.3]
    )
    return Scenario("mesh-two-valleys", topo, links, system, ids)


def _mesh_faulty(seed: RngLike, **kw) -> Scenario:
    side = int(kw.get("side", 8))
    n_tasks = int(kw.get("n_tasks", 8 * side * side))
    fault = float(kw.get("fault_prob", 0.05))
    topo = builders.mesh(side, side)
    rng = ensure_rng(derive(seed, 1))
    links = LinkAttributes.heterogeneous(
        topo,
        seed=rng,
        bandwidth_range=(0.5, 2.0),
        distance_range=(1.0, 1.0),
        fault_range=(0.0, fault),
    )
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("mesh-faulty", topo, links, system, ids)


def _random_hotspot(seed: RngLike, **kw) -> Scenario:
    n_nodes = int(kw.get("n_nodes", 64))
    avg_degree = float(kw.get("avg_degree", 4.0))
    graph_seed = int(kw.get("graph_seed", 1))
    n_tasks = int(kw.get("n_tasks", 8 * n_nodes))
    topo = builders.random_connected(n_nodes, avg_degree, seed=graph_seed)
    links = LinkAttributes.uniform(topo)
    system = TaskSystem(topo)
    ids = distributions.single_hotspot(system, n_tasks, derive(seed, 0))
    return Scenario("random-hotspot", topo, links, system, ids)


SCENARIOS: dict[str, Callable[..., Scenario]] = {
    "mesh-hotspot": _mesh_hotspot,
    "torus-hotspot": _torus_hotspot,
    "hypercube-hotspot": _hypercube_hotspot,
    "mesh-random": _mesh_random,
    "mesh-two-valleys": _mesh_two_valleys,
    "mesh-faulty": _mesh_faulty,
    "random-hotspot": _random_hotspot,
}

#: every kwarg some scenario constructor reads. Constructors ignore
#: keys they don't use (so one kwargs dict can be shared across a
#: grid of different scenarios), which makes typos silent — callers
#: that accept user-supplied kwargs (e.g. ``repro.runner.RunSpec``)
#: validate against this set to catch them.
SCENARIO_KWARGS = frozenset(
    {"side", "dim", "n_tasks", "fault_prob", "n_nodes", "avg_degree", "graph_seed"}
)


def build_scenario(name: str, seed: RngLike = 0, **kwargs) -> Scenario:
    """Build a registered scenario by *name* (see :data:`SCENARIOS`).

    Extra keyword arguments override scenario-specific sizes (e.g.
    ``side=16``, ``n_tasks=2048``).
    """
    try:
        ctor = SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        )
    return ctor(seed, **kwargs)
